#include "ml/gbdt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"
#include "util/random.h"

namespace fab::ml {
namespace {

Dataset MakeDataset(size_t n, size_t f, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 2.0 * cols[0][i] + std::sin(3.0 * cols[1][i]) + 0.1 * rng.Normal();
  }
  Dataset d;
  d.x = *ColMatrix::FromColumns(std::move(cols));
  d.y = std::move(y);
  for (size_t j = 0; j < f; ++j) d.feature_names.push_back("f" + std::to_string(j));
  return d;
}

TEST(GbdtTest, RejectsBadInput) {
  GbdtRegressor xgb;
  auto x = ColMatrix::FromColumns({{1, 2, 3}});
  EXPECT_FALSE(xgb.Fit(*x, {1.0}).ok());
  GbdtParams params;
  params.n_rounds = 0;
  EXPECT_FALSE(GbdtRegressor(params).Fit(*x, {1, 2, 3}).ok());
  params.n_rounds = 5;
  params.subsample = 0.0;
  EXPECT_FALSE(GbdtRegressor(params).Fit(*x, {1, 2, 3}).ok());
}

TEST(GbdtTest, BaseScoreIsTargetMean) {
  auto x = ColMatrix::FromColumns({{1, 2, 3, 4}});
  GbdtParams params;
  params.n_rounds = 1;
  GbdtRegressor xgb(params);
  ASSERT_TRUE(xgb.Fit(*x, {2, 4, 6, 8}).ok());
  EXPECT_DOUBLE_EQ(xgb.base_score(), 5.0);
}

TEST(GbdtTest, LearnsNonlinearSignal) {
  const Dataset d = MakeDataset(800, 8, 3);
  GbdtParams params;
  params.n_rounds = 150;
  params.learning_rate = 0.1;
  params.max_depth = 4;
  GbdtRegressor xgb(params);
  ASSERT_TRUE(xgb.Fit(d.x, d.y).ok());
  EXPECT_GT(R2Score(d.y, xgb.Predict(d.x)), 0.9);
}

TEST(GbdtTest, TrainErrorDecreasesWithRounds) {
  const Dataset d = MakeDataset(500, 6, 5);
  double prev_mse = 1e18;
  for (int rounds : {5, 25, 100}) {
    GbdtParams params;
    params.n_rounds = rounds;
    params.learning_rate = 0.1;
    GbdtRegressor xgb(params);
    ASSERT_TRUE(xgb.Fit(d.x, d.y).ok());
    const double mse = MeanSquaredError(d.y, xgb.Predict(d.x));
    EXPECT_LT(mse, prev_mse);
    prev_mse = mse;
  }
}

TEST(GbdtTest, ImportancesFavorSignalFeatures) {
  const Dataset d = MakeDataset(600, 8, 7);
  GbdtParams params;
  params.n_rounds = 60;
  GbdtRegressor xgb(params);
  ASSERT_TRUE(xgb.Fit(d.x, d.y).ok());
  const std::vector<double> imp = xgb.FeatureImportances();
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(imp[0] + imp[1], 0.85);
}

TEST(GbdtTest, DeterministicInSeed) {
  const Dataset d = MakeDataset(300, 5, 9);
  GbdtParams params;
  params.n_rounds = 20;
  params.subsample = 0.8;
  params.colsample = 0.7;
  params.seed = 77;
  GbdtRegressor a(params), b(params);
  ASSERT_TRUE(a.Fit(d.x, d.y).ok());
  ASSERT_TRUE(b.Fit(d.x, d.y).ok());
  EXPECT_EQ(a.Predict(d.x), b.Predict(d.x));
}

TEST(GbdtTest, StrongLambdaRegularizesPredictions) {
  const Dataset d = MakeDataset(300, 4, 11);
  GbdtParams weak;
  weak.n_rounds = 20;
  weak.lambda = 0.0;
  GbdtParams strong = weak;
  strong.lambda = 1e4;
  GbdtRegressor xgb_weak(weak), xgb_strong(strong);
  ASSERT_TRUE(xgb_weak.Fit(d.x, d.y).ok());
  ASSERT_TRUE(xgb_strong.Fit(d.x, d.y).ok());
  // Heavy L2 keeps predictions near the base score.
  double spread_weak = 0.0, spread_strong = 0.0;
  for (size_t i = 0; i < d.num_rows(); ++i) {
    spread_weak += std::fabs(xgb_weak.PredictOne(d.x, i) - xgb_weak.base_score());
    spread_strong +=
        std::fabs(xgb_strong.PredictOne(d.x, i) - xgb_strong.base_score());
  }
  EXPECT_LT(spread_strong, 0.2 * spread_weak);
}

TEST(GbdtTest, SetParamUpdatesAndValidates) {
  GbdtRegressor xgb;
  EXPECT_TRUE(xgb.SetParam("n_rounds", 11).ok());
  EXPECT_TRUE(xgb.SetParam("learning_rate", 0.05).ok());
  EXPECT_TRUE(xgb.SetParam("max_depth", 6).ok());
  EXPECT_TRUE(xgb.SetParam("lambda", 2.0).ok());
  EXPECT_TRUE(xgb.SetParam("gamma", 0.1).ok());
  EXPECT_TRUE(xgb.SetParam("subsample", 0.8).ok());
  EXPECT_TRUE(xgb.SetParam("colsample", 0.7).ok());
  EXPECT_FALSE(xgb.SetParam("bogus", 1).ok());
  EXPECT_EQ(xgb.params().n_rounds, 11);
  EXPECT_DOUBLE_EQ(xgb.params().learning_rate, 0.05);
}

TEST(GbdtTest, CloneUnfittedCopiesParams) {
  GbdtParams params;
  params.n_rounds = 33;
  GbdtRegressor xgb(params);
  auto clone = xgb.CloneUnfitted();
  auto* typed = dynamic_cast<GbdtRegressor*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->params().n_rounds, 33);
  EXPECT_EQ(clone->name(), "xgb");
}

TEST(GbdtTest, OutOfSampleBeatsMeanPredictor) {
  const Dataset train = MakeDataset(600, 6, 13);
  const Dataset test = MakeDataset(300, 6, 14);
  GbdtParams params;
  params.n_rounds = 100;
  params.max_depth = 4;
  GbdtRegressor xgb(params);
  ASSERT_TRUE(xgb.Fit(train.x, train.y).ok());
  EXPECT_GT(R2Score(test.y, xgb.Predict(test.x)), 0.5);
}

}  // namespace
}  // namespace fab::ml
