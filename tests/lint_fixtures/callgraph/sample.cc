// Fixture: --callgraph-dump golden input. A free helper, an inline
// member (displayed Widget::Grow), a rooted entry point, and one
// undefined callee (flagged "??" in the dump). Never compiled.

namespace dumpfix {

int HelperDepth(int v) { return v + 1; }

class Widget {
 public:
  int Grow(int v) { return HelperDepth(v); }
};

// fablint:det-root — dump fixture root.
int DumpRootEntry(Widget& w) {
  return w.Grow(ExternalSeed());
}

}  // namespace dumpfix
