// Fixture: exactly one det-random-device violation. Never compiled.
#include <random>

unsigned AmbientSeed() {
  std::random_device entropy;
  return entropy.operator()();
}
