// Fixture: a raw steady_clock::now() under a bench/ path prefix — exempt
// from obs-raw-clock in scoped mode (benchmarks report wall time by
// design), but it still fires under --all-rules. Never compiled.
#include <chrono>

namespace fab_fixture {

inline double BenchWallMillis(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - start).count();
}

}  // namespace fab_fixture
