#include <mutex>

// Fixture: the inverse nesting of lock_order_a.cc — second_ is acquired
// first here. The lock-order diagnostic anchors at this file (the
// (path, line)-later of the two sites).
class PairedLocks {
 public:
  void LockSecondThenFirst();

  std::mutex first_;   // fablint:allow(safety-unannotated-mutex)
  std::mutex second_;  // fablint:allow(safety-unannotated-mutex)
};

void PairedLocks::LockSecondThenFirst() {
  std::lock_guard<std::mutex> hold_second(second_);
  std::lock_guard<std::mutex> hold_first(first_);
}
