// Fixture: exactly one net-raw-syscall diagnostic — the global-qualified
// ::connect call below. Everything else is a negative the rule must
// ignore: member functions and name-qualified calls that merely share a
// syscall's name, and syscall tokens without a call.

namespace impl {
int bind(int value) { return value; }
}  // namespace impl

struct Channel {
  int fd = 0;
  int send(int) { return 0; }
  int poll() { return 0; }
};

int Use(Channel channel) {
  int rc = ::connect(channel.fd, nullptr, 0);
  rc += channel.send(rc);   // member call, not a syscall
  rc += channel.poll();     // member call, not a syscall
  rc += impl::bind(rc);     // name-qualified, not the global namespace
  int listen = rc;          // bare token, no call
  return rc + listen;
}
