// `Ping` returns Status in this file but void in status_conflict_b.cc.
// The cross-file signature index must drop the ambiguous name, so the
// discarded call below stays unflagged when both files are linted
// together (and fires when this file is linted alone).
struct Status {};

Status Ping();

void Caller() {
  Ping();
}
