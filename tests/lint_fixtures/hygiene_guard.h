// Fixture: exactly one hygiene-guard violation (no #pragma once and no
// include guard). Never compiled.

namespace fab_fixture {
inline int Unguarded() { return 1; }
}  // namespace fab_fixture
