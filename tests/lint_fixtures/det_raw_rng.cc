// Fixture: two det-raw-rng violations inside a det-rooted body — srand
// seeding and a drand48 draw. Both bypass the repo's fab::Rng, so a
// rerun with the same seed can diverge. Never compiled.
#include <cstdlib>

namespace rngfix {

// fablint:det-root — fixture entry point.
double RawRngEntry() {
  srand(1234u);
  return drand48();
}

}  // namespace rngfix
