// Deliberate status-unchecked violations: Status/Result-returning calls
// whose value dies as a bare expression statement (lines 20 and 21).
// Every recognized consumer shape is also present and must stay clean:
// assignment, branching, argument position, explicit (void), return,
// and a fablint:allow suppression.
struct Status {
  bool ok() const { return true; }
};
template <typename T>
struct Result {
  bool ok() const { return true; }
};

Status Poke();
Result<int> Fetch();
void Sink(Status s);

Status Caller() {
  Status kept = Poke();
  Poke();
  Fetch();
  if (!kept.ok()) return kept;
  (void)Poke();  // deliberate: fixture exercises the explicit-discard shape
  Sink(Poke());
  if (Fetch().ok()) {
    // fablint:allow(status-unchecked)
    Poke();
  }
  return Poke();
}
