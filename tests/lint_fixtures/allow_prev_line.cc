#include <cstdlib>

// Fixture: an allow on the line ABOVE the violation suppresses it (the
// same-line form is covered by suppressed.cc).
int DrawSuppressed() {
  // fablint:allow(det-rand)
  return std::rand();
}
