// Fixture: exactly one det-time violation. Never compiled.
#include <ctime>

long WallClockSeed() {
  return static_cast<long>(time(nullptr));
}
