// Fixture: det-root marker placement. A marker leads a comment on the
// definition-name line or up to two lines above it, and annotation text
// may follow after a word boundary. "det-rootish" is NOT the marker, so
// the last function stays unreachable and its srand is clean. Two
// det-raw-rng violations total. Never compiled.
#include <cstdlib>

namespace rootfix {

// fablint:det-root: rationale text after the marker still marks.
void RootedWithRationale() {
  srand(1u);
}

// fablint:det-root — two lines above the name line is still in range
// (this continuation line sits between the marker and the signature).
void RootedTwoAbove() {
  srand(2u);
}

// fablint:det-rootish
void NotRooted() {
  srand(3u);
}

}  // namespace rootfix
