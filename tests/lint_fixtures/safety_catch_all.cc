// Fixture: exactly one safety-catch-all violation. Never compiled.
void MightThrow();

bool Swallow() {
  try {
    MightThrow();
  } catch (...) {
    return false;
  }
  return true;
}
