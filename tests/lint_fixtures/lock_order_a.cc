#include <mutex>

// Fixture: acquires first_ then second_. lock_order_b.cc nests the same
// two mutexes in the opposite order, so the pair can deadlock under
// load — the cross-file lock-order rule must pair the two sites.
class PairedLocks {
 public:
  void LockFirstThenSecond();

  std::mutex first_;   // fablint:allow(safety-unannotated-mutex)
  std::mutex second_;  // fablint:allow(safety-unannotated-mutex)
};

void PairedLocks::LockFirstThenSecond() {
  std::lock_guard<std::mutex> hold_first(first_);
  std::lock_guard<std::mutex> hold_second(second_);
}
