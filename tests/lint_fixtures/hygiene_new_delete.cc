// Fixture: exactly one hygiene-new-delete violation (the raw new); the
// deleted copy constructor must not count. Never compiled.

struct Pinned {
  Pinned() = default;
  Pinned(const Pinned&) = delete;
};

int* LeakOne() {
  return new int(3);
}
