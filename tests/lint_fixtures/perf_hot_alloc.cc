// Deliberate perf-hot-alloc violations inside the fablint:hot region:
// a make_unique (line 16), an unreserved push_back (line 17), and a
// to_string temporary (line 20). The reserved container, the suppressed
// string, and everything outside the region must stay clean.
#include <memory>
#include <string>
#include <vector>

void Cold(std::vector<int>& out) {
  out.push_back(1);
}

int Hot(std::vector<int>& tmp, std::vector<int>& ready, int v) {
  ready.reserve(16);
  // fablint:hot — fixture hot region
  auto owned = std::make_unique<int>(v);
  tmp.push_back(v);
  ready.push_back(v);
  int digits = 0;
  for (char c : std::to_string(v)) digits += c != '-';
  // fablint:allow(perf-hot-alloc)
  std::string scratch(static_cast<size_t>(digits), ' ');
  // fablint:endhot
  return *owned + static_cast<int>(scratch.size());
}
