// Fixture: exactly one safety-float-accum violation (the accumulator);
// the cast must not count. Never compiled.
#include <vector>

double LossyMean(const std::vector<double>& values) {
  float total = 0.0f;
  for (double v : values) total += static_cast<float>(v);
  return total / static_cast<float>(values.size());
}
