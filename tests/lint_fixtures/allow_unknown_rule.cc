#include <cstdlib>

// Fixture: a typo'd rule id must be diagnosed (lint-unknown-rule), and
// it must NOT suppress the real finding underneath — both fire.
int DrawTypo() {
  // fablint:allow(det-rnd)
  return std::rand();
}
