// Fixture: exactly one det-unordered-iter violation (the range-for).
// Never compiled.
#include <string>
#include <unordered_map>

double HashOrderSum(const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& entry : weights) {
    total += entry.second;
  }
  return total;
}
