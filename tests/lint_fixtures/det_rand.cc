// Fixture: exactly one det-rand violation (line 5). Never compiled.
#include <cstdlib>

int AmbientNoise() {
  return std::rand();
}
