#pragma once
#include <mutex>

// Fixture: a mutex member with no FAB_GUARDED_BY user anywhere in the
// file — the safety-unannotated-mutex rule must anchor at the member.
class UnguardedQueue {
 public:
  void Push(int v);

 private:
  std::mutex mu_;
  int size_ = 0;
};
