// Fixture: zero violations — the identical accumulating loop as
// det_reach_positive.cc, but no fablint:det-root anywhere in the file,
// so no definition is det-reachable and pass 4 stays quiet. The v1
// per-file rule still sees the range-for and is allowed away.
// Never compiled.
#include <string>
#include <unordered_map>

namespace noreachfix {

double NegSumWeights(
    const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  // fablint:allow(det-unordered-iter)
  for (const auto& entry : weights) {
    total += entry.second;
  }
  return total;
}

double NegEntry(const std::unordered_map<std::string, double>& weights) {
  return NegSumWeights(weights);
}

}  // namespace noreachfix
