// Fixture: exactly one violation — a FAB_TRACE_SCOPE whose name is
// computed (here a c_str() call) must trip obs-span-literal; literal
// names, with or without the structured-args list, stay clean. Never
// compiled.
#include <string>

#include "util/obs/trace.h"

namespace fab_fixture {

inline void Handle(const std::string& endpoint) {
  FAB_TRACE_SCOPE("net/handle");                  // literal: clean
  FAB_TRACE_SCOPE("net/handle", {{"shard", 3}});  // literal + args: clean
  FAB_TRACE_SCOPE(endpoint.c_str());              // the one violation
}

}  // namespace fab_fixture
