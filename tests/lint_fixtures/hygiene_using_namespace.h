// Fixture: exactly one hygiene-using-namespace violation. Never compiled.
#pragma once

#include <string>

using namespace std;

inline string Leaky() { return "fixture"; }
