#include <cstdlib>

// Fixture: one preceding-line allow list with TWO rule ids suppresses
// both findings on the next line.
int* MakeLeakyRandom() {
  // fablint:allow(det-rand, hygiene-new-delete)
  return new int(std::rand());
}
