// Fixture: zero violations — the remediation shape the
// det-unordered-iteration message recommends. The unordered map is bulk
// copied into an ordered std::map (not an accumulating loop), and the
// reduction walks the sorted copy. The v1 per-file rule flags the bare
// .begin() on the unordered name and is allowed away. Never compiled.
#include <map>
#include <string>
#include <unordered_map>

namespace sortfix {

// fablint:det-root — fixture entry point.
double SortedCopySum(
    const std::unordered_map<std::string, double>& weights) {
  // fablint:allow(det-unordered-iter)
  const std::map<std::string, double> sorted(weights.begin(), weights.end());
  double total = 0.0;
  for (const auto& entry : sorted) {
    total += entry.second;
  }
  return total;
}

}  // namespace sortfix
