// Fixture: exactly one safety-assert violation; static_assert must not
// count. Never compiled.
#include <cassert>

static_assert(sizeof(int) >= 4, "not a violation");

void Narrow(int value) {
  assert(value >= 0);
}
