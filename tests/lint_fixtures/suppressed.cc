// Fixture: zero reported violations — each banned construct carries a
// fablint:allow suppression (same-line and preceding-line forms, plus a
// comma-separated list). Never compiled.
#include <cstdlib>
#include <ctime>

int SameLineSuppression() {
  return std::rand();  // fablint:allow(det-rand)
}

long PrecedingLineSuppression() {
  // fablint:allow(det-time)
  return static_cast<long>(time(nullptr));
}

int* ListSuppression() {
  // fablint:allow(safety-float-accum, hygiene-new-delete)
  return new int(7);
}
