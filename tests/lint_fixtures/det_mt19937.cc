// Fixture: exactly one det-mt19937 violation. Never compiled.
#include <random>

unsigned long StdlibDraw() {
  std::mt19937 generator{42};
  return generator.operator()();
}
