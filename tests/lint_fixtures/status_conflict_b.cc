// Companion to status_conflict_a.cc: the conflicting void declaration
// that makes `Ping` ambiguous across the fixture set.
void Ping();

void OtherCaller() {
  Ping();
}
