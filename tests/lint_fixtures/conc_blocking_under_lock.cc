// Fixture: three conc-blocking-under-lock violations inside one critical
// section — a direct sleep, a future wait, and a two-hop transitive call
// into file-stream IO — plus the deliberate negatives: cv.wait(lock)
// releases the mutex while sleeping, and the identical sleep after the
// guard's scope closes is clean. Never compiled.
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <future>
#include <mutex>
#include <string>
#include <thread>

namespace blockfix {

void LoadSnapshotFromDisk(const std::string& path) {
  std::ifstream in(path);  // file-stream IO: clean here, no lock held
}

void ReloadAll(const std::string& path) { LoadSnapshotFromDisk(path); }

class Cache {
 public:
  void RefreshUnderLock(std::future<int> pending, const std::string& path) {
    std::lock_guard<std::mutex> hold(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    last_ = pending.get();
    ReloadAll(path);
  }

  void WaitForSignal(std::condition_variable& cv) {
    std::unique_lock<std::mutex> lk(mu_);
    cv.wait(lk);  // clean: wait(lock) releases the mutex while sleeping
  }

  void SleepOutsideLock() {
    {
      std::lock_guard<std::mutex> hold(mu_);
      last_ = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));  // clean
  }

 private:
  std::mutex mu_;  // fablint:allow(safety-unannotated-mutex)
  int last_ = 0;
};

}  // namespace blockfix
