// Fixture: two det-pointer-key violations — a pointer-keyed map and a
// sort comparator that orders by raw pointer value. Pointer VALUES are
// fine (they never drive order); only pointer keys and bare pointer
// comparisons are flagged, and only because the file defines a
// det-reachable function. Never compiled.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace ptrfix {

struct Series {
  std::string name;
  const Series* parent = nullptr;  // pointer value: not a key, clean
};

// fablint:det-root — fixture entry point.
void PtrKeyEntry(std::vector<Series*>& all) {
  std::map<Series*, int> rank;
  for (Series* s : all) rank[s] = 0;
  std::sort(all.begin(), all.end(),
            [](const Series* a, const Series* b) { return a < b; });
}

}  // namespace ptrfix
