// Fixture: exactly one violation — a raw steady_clock::now() read
// outside src/util/obs/ and bench/ must trip obs-raw-clock (and nothing
// else; steady_clock *types* and durations stay clean). Never compiled.
#include <chrono>

namespace fab_fixture {

inline double ElapsedMicros(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();  // the one violation
  return std::chrono::duration<double, std::micro>(now - start).count();
}

}  // namespace fab_fixture
