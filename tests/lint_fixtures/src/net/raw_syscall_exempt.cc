// Under its real path scope this file is clean: src/net/ is the one
// layer allowed to touch sockets, so the rule skips it in scoped mode.
// --all-rules bypasses every path scope and the call below resurfaces
// as net-raw-syscall.

namespace fab::net {

int OpenListener() { return ::socket(2, 1, 0); }

}  // namespace fab::net
