#include "graph/unused_dep.h"

// Fixture: nothing exported by unused_dep.h (directly or transitively)
// is referenced here — graph-unused-include anchors at the include.
int UnusedUserValue() { return 7; }
