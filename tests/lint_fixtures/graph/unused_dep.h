#pragma once

// Fixture: exports a type that unused_user.cc includes but never names.
struct UnusedThing {
  int payload = 0;
};
