#pragma once
#include "graph/diamond_base.h"

// Fixture: right edge of the diamond (see diamond_top.cc).
struct DiamondRight {
  DiamondBase base;
};
