#pragma once
#include "graph/cycle_a.h"

// Fixture: closes the a -> b -> c -> a cycle (see cycle_a.h).
struct CycleC {
  CycleA* next;
};
