#pragma once
#include "graph/diamond_base.h"

// Fixture: left edge of the diamond (see diamond_top.cc).
struct DiamondLeft {
  DiamondBase base;
};
