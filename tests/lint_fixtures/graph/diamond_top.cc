#include "graph/diamond_left.h"
#include "graph/diamond_right.h"

// Fixture negative: a diamond (top -> left -> base, top -> right ->
// base) reaches diamond_base.h twice without any cycle, and both
// includes are referenced — zero graph findings expected.
int DiamondSum(const DiamondLeft& l, const DiamondRight& r) {
  return l.base.value + r.base.value;
}
