#pragma once
#include "graph/cycle_c.h"

// Fixture: middle of the a -> b -> c -> a cycle (see cycle_a.h).
struct CycleB {
  CycleC* next;
};
