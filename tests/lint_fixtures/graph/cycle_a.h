#pragma once
#include "graph/cycle_b.h"

// Fixture: a -> b -> c -> a include cycle. Each header uses the next
// one's type so graph-unused-include stays quiet; only the cycle rule
// fires, once, anchored at this (lexicographically smallest) member.
struct CycleA {
  CycleB* next;
};
