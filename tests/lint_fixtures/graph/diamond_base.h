#pragma once

// Fixture: the shared base of a diamond include shape (see
// diamond_top.cc) — a diamond is a DAG, not a cycle, and must be quiet.
struct DiamondBase {
  int value = 0;
};
