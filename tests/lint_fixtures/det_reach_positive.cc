// Fixture: one det-unordered-iteration violation, reached THROUGH the
// call graph — the rooted entry point never touches the map itself; the
// helper it calls accumulates over one. The v1 per-file rule also sees
// the range-for, so it is allowed away to isolate the pass-4 finding.
// Never compiled.
#include <string>
#include <unordered_map>

namespace reachfix {

double SumCategoryWeights(
    const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  // fablint:allow(det-unordered-iter)
  for (const auto& entry : weights) {
    total += entry.second;
  }
  return total;
}

// fablint:det-root — fixture entry point.
double ReachRootEntry(
    const std::unordered_map<std::string, double>& weights) {
  return SumCategoryWeights(weights);
}

}  // namespace reachfix
