// Fixture: zero violations — banned identifiers appear only inside
// comments and string literals, which the masker must blank out.
// Mentions for the masker: std::rand(), time(nullptr), assert(x),
// catch (...), new int, std::mt19937, steady_clock::now(). Never compiled.
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fab_fixture {

inline const char* kBannedWordsInAString =
    "std::rand() time(nullptr) assert(1) catch (...) new delete mt19937";

inline double SortedOrderSum(const std::map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& entry : weights) total += entry.second;
  return total;
}

inline std::unique_ptr<std::vector<double>> OwnedBuffer(std::size_t n) {
  // steady_clock *types* are fine (deadlines, durations); only a raw
  // steady_clock::now() read would trip obs-raw-clock.
  const std::chrono::steady_clock::time_point t0{};
  (void)t0;
  return std::make_unique<std::vector<double>>(n, 0.0);
}

}  // namespace fab_fixture
