// Deliberate status-nodiscard violation: `Save` returns Status without
// [[nodiscard]] (line 11). `Load` and `Parse` carry the attribute and
// must stay clean, as must the void-returning declaration.
#ifndef TESTS_LINT_FIXTURES_STATUS_NODISCARD_H_
#define TESTS_LINT_FIXTURES_STATUS_NODISCARD_H_

struct Status {};
template <typename T>
struct Result {};

Status Save(int id);
[[nodiscard]] Status Load(int id);
[[nodiscard]] Result<int> Parse(const char* text);
void Touch(int id);

#endif  // TESTS_LINT_FIXTURES_STATUS_NODISCARD_H_
