#include "util/status.h"

#include <gtest/gtest.h>

namespace fab {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::InvalidArgument("negative length");
  EXPECT_EQ(s.ToString(), "InvalidArgument: negative length");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FAB_ASSIGN_OR_RETURN(int half, Half(x));
  FAB_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Check(int a, int b) {
  FAB_RETURN_IF_ERROR(FailIfNegative(a));
  FAB_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Check(1, 2).ok());
  EXPECT_FALSE(Check(-1, 2).ok());
  EXPECT_FALSE(Check(1, -2).ok());
}

}  // namespace
}  // namespace fab
