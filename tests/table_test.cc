#include "table/table.h"

#include <gtest/gtest.h>

namespace fab::table {
namespace {

Table MakeTable(int days) {
  auto t = Table::Create(DailyRange(Date(2020, 1, 1),
                                    Date(2020, 1, 1).AddDays(days - 1)));
  return std::move(t).value();
}

TEST(TableTest, CreateRejectsUnsortedIndex) {
  std::vector<Date> dates{Date(2020, 1, 2), Date(2020, 1, 1)};
  EXPECT_FALSE(Table::Create(dates).ok());
}

TEST(TableTest, CreateRejectsDuplicateDates) {
  std::vector<Date> dates{Date(2020, 1, 1), Date(2020, 1, 1)};
  EXPECT_FALSE(Table::Create(dates).ok());
}

TEST(TableTest, AddAndGetColumn) {
  Table t = MakeTable(3);
  ASSERT_TRUE(t.AddColumn("a", std::vector<double>{1, 2, 3}).ok());
  EXPECT_TRUE(t.HasColumn("a"));
  EXPECT_EQ(t.num_columns(), 1u);
  const Column* c = *t.GetColumn("a");
  EXPECT_DOUBLE_EQ(c->value(2), 3.0);
}

TEST(TableTest, AddColumnRejectsDuplicateName) {
  Table t = MakeTable(2);
  ASSERT_TRUE(t.AddColumn("a", std::vector<double>{1, 2}).ok());
  EXPECT_EQ(t.AddColumn("a", std::vector<double>{3, 4}).code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, AddColumnRejectsWrongLength) {
  Table t = MakeTable(2);
  EXPECT_EQ(t.AddColumn("a", std::vector<double>{1, 2, 3}).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, GetMissingColumnFails) {
  Table t = MakeTable(2);
  EXPECT_EQ(t.GetColumn("nope").status().code(), StatusCode::kNotFound);
}

TEST(TableTest, DropColumnShiftsPositions) {
  Table t = MakeTable(2);
  ASSERT_TRUE(t.AddColumn("a", std::vector<double>{1, 2}).ok());
  ASSERT_TRUE(t.AddColumn("b", std::vector<double>{3, 4}).ok());
  ASSERT_TRUE(t.AddColumn("c", std::vector<double>{5, 6}).ok());
  ASSERT_TRUE(t.DropColumn("b").ok());
  EXPECT_EQ(t.column_names(), (std::vector<std::string>{"a", "c"}));
  EXPECT_DOUBLE_EQ((*t.GetColumn("c"))->value(0), 5.0);
  EXPECT_FALSE(t.DropColumn("b").ok());
}

TEST(TableTest, RenameColumn) {
  Table t = MakeTable(1);
  ASSERT_TRUE(t.AddColumn("old", std::vector<double>{1}).ok());
  ASSERT_TRUE(t.RenameColumn("old", "new").ok());
  EXPECT_TRUE(t.HasColumn("new"));
  EXPECT_FALSE(t.HasColumn("old"));
  EXPECT_FALSE(t.RenameColumn("missing", "x").ok());
  ASSERT_TRUE(t.AddColumn("other", std::vector<double>{2}).ok());
  EXPECT_EQ(t.RenameColumn("new", "other").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(t.RenameColumn("new", "new").ok());
}

TEST(TableTest, SetColumnReplacesData) {
  Table t = MakeTable(2);
  ASSERT_TRUE(t.AddColumn("a", std::vector<double>{1, 2}).ok());
  ASSERT_TRUE(t.SetColumn("a", Column(std::vector<double>{9, 8})).ok());
  EXPECT_DOUBLE_EQ((*t.GetColumn("a"))->value(0), 9.0);
  EXPECT_FALSE(t.SetColumn("missing", Column(2)).ok());
  EXPECT_FALSE(t.SetColumn("a", Column(3)).ok());
}

TEST(TableTest, FindRow) {
  Table t = MakeTable(5);
  EXPECT_EQ(t.FindRow(Date(2020, 1, 3)), 2);
  EXPECT_EQ(t.FindRow(Date(2021, 1, 1)), -1);
}

TEST(TableTest, SliceRowsByDate) {
  Table t = MakeTable(10);
  ASSERT_TRUE(t.AddColumn("a", std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}).ok());
  Table s = t.SliceRows(Date(2020, 1, 3), Date(2020, 1, 5));
  ASSERT_EQ(s.num_rows(), 3u);
  EXPECT_EQ(s.index().front(), Date(2020, 1, 3));
  EXPECT_DOUBLE_EQ((*s.GetColumn("a"))->value(0), 2.0);
}

TEST(TableTest, SliceRowsOutsideRangeIsEmpty) {
  Table t = MakeTable(3);
  EXPECT_EQ(t.SliceRows(Date(2021, 1, 1), Date(2021, 2, 1)).num_rows(), 0u);
}

TEST(TableTest, SelectColumnsReordersAndSubsets) {
  Table t = MakeTable(2);
  ASSERT_TRUE(t.AddColumn("a", std::vector<double>{1, 2}).ok());
  ASSERT_TRUE(t.AddColumn("b", std::vector<double>{3, 4}).ok());
  auto s = t.SelectColumns({"b", "a"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->column_names(), (std::vector<std::string>{"b", "a"}));
  EXPECT_FALSE(t.SelectColumns({"a", "zzz"}).ok());
}

TEST(TableTest, InnerJoinIntersectsDates) {
  auto left = Table::Create(DailyRange(Date(2020, 1, 1), Date(2020, 1, 5)));
  ASSERT_TRUE(left->AddColumn("a", std::vector<double>{1, 2, 3, 4, 5}).ok());
  auto right = Table::Create(DailyRange(Date(2020, 1, 4), Date(2020, 1, 8)));
  ASSERT_TRUE(right->AddColumn("b", std::vector<double>{40, 50, 60, 70, 80}).ok());
  auto joined = left->InnerJoin(*right);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined->num_rows(), 2u);
  EXPECT_DOUBLE_EQ((*joined->GetColumn("a"))->value(0), 4.0);
  EXPECT_DOUBLE_EQ((*joined->GetColumn("b"))->value(0), 40.0);
}

TEST(TableTest, InnerJoinRejectsDuplicateColumns) {
  Table a = MakeTable(2);
  ASSERT_TRUE(a.AddColumn("x", std::vector<double>{1, 2}).ok());
  Table b = MakeTable(2);
  ASSERT_TRUE(b.AddColumn("x", std::vector<double>{3, 4}).ok());
  EXPECT_EQ(a.InnerJoin(b).status().code(), StatusCode::kAlreadyExists);
}

TEST(TableTest, DropRowsWithNulls) {
  Table t = MakeTable(3);
  Column c(3);
  c.Set(0, 1.0);
  c.Set(2, 3.0);
  ASSERT_TRUE(t.AddColumn("a", std::move(c)).ok());
  ASSERT_TRUE(t.AddColumn("b", std::vector<double>{10, 20, 30}).ok());
  Table clean = t.DropRowsWithNulls();
  ASSERT_EQ(clean.num_rows(), 2u);
  EXPECT_EQ(clean.index()[1], Date(2020, 1, 3));
  EXPECT_EQ(clean.TotalNullCount(), 0u);
}

TEST(TableTest, TotalNullCount) {
  Table t = MakeTable(3);
  Column c(3);
  c.Set(0, 1.0);
  ASSERT_TRUE(t.AddColumn("a", std::move(c)).ok());
  ASSERT_TRUE(t.AddColumn("b", std::vector<double>{1, 2, 3}).ok());
  EXPECT_EQ(t.TotalNullCount(), 2u);
}

}  // namespace
}  // namespace fab::table
