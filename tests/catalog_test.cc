#include "sim/catalog.h"

#include <gtest/gtest.h>

#include <set>

namespace fab::sim {
namespace {

TEST(CategoryTest, AllCategoriesListedOnce) {
  const auto& all = AllCategories();
  EXPECT_EQ(all.size(), 7u);
  std::set<int> distinct;
  for (DataCategory c : all) distinct.insert(static_cast<int>(c));
  EXPECT_EQ(distinct.size(), all.size());
}

TEST(CategoryTest, NamesMatchPaperTerminology) {
  EXPECT_STREQ(CategoryName(DataCategory::kMacro), "Macroeconomic Indicators");
  EXPECT_STREQ(CategoryName(DataCategory::kTechnical), "Technical Indicators");
  EXPECT_STREQ(CategoryName(DataCategory::kSentiment),
               "Sentiment and Interest Metrics");
  EXPECT_STREQ(CategoryName(DataCategory::kTradFi),
               "Traditional Market Indices");
  EXPECT_STREQ(CategoryName(DataCategory::kOnChainBtc),
               "On-chain Metrics (BTC)");
  EXPECT_STREQ(CategoryName(DataCategory::kOnChainUsdc),
               "On-chain Metrics (USDC)");
  EXPECT_STREQ(CategoryName(DataCategory::kOnChainEth),
               "On-chain Metrics (ETH)");
}

TEST(CategoryTest, KeyRoundTrip) {
  for (DataCategory c : AllCategories()) {
    auto back = CategoryFromKey(CategoryKey(c));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, c);
  }
  EXPECT_FALSE(CategoryFromKey("bogus").ok());
}

TEST(MetricCatalogTest, AddAndQuery) {
  MetricCatalog catalog;
  ASSERT_TRUE(catalog.Add("TxCnt", DataCategory::kOnChainBtc, "tx count").ok());
  ASSERT_TRUE(catalog.Add("QQQ_Close", DataCategory::kTradFi).ok());
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_TRUE(catalog.Has("TxCnt"));
  EXPECT_FALSE(catalog.Has("missing"));
  EXPECT_EQ(*catalog.CategoryOf("TxCnt"), DataCategory::kOnChainBtc);
  EXPECT_FALSE(catalog.CategoryOf("missing").ok());
}

TEST(MetricCatalogTest, RejectsDuplicates) {
  MetricCatalog catalog;
  ASSERT_TRUE(catalog.Add("x", DataCategory::kMacro).ok());
  EXPECT_EQ(catalog.Add("x", DataCategory::kMacro).code(),
            StatusCode::kAlreadyExists);
}

TEST(MetricCatalogTest, CountAndNamesInCategory) {
  MetricCatalog catalog;
  (void)catalog.Add("a", DataCategory::kMacro);
  (void)catalog.Add("b", DataCategory::kTradFi);
  (void)catalog.Add("c", DataCategory::kMacro);
  EXPECT_EQ(catalog.CountInCategory(DataCategory::kMacro), 2u);
  EXPECT_EQ(catalog.CountInCategory(DataCategory::kSentiment), 0u);
  EXPECT_EQ(catalog.NamesInCategory(DataCategory::kMacro),
            (std::vector<std::string>{"a", "c"}));
}

TEST(MetricCatalogTest, MetricsPreserveInsertionOrder) {
  MetricCatalog catalog;
  (void)catalog.Add("z", DataCategory::kMacro);
  (void)catalog.Add("a", DataCategory::kMacro);
  EXPECT_EQ(catalog.metrics()[0].name, "z");
  EXPECT_EQ(catalog.metrics()[1].name, "a");
}

}  // namespace
}  // namespace fab::sim
