#include "serve/batch_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "ml/forest.h"
#include "util/random.h"

namespace fab::serve {
namespace {

ml::ColMatrix MakeMatrix(size_t n, size_t f, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  return *ml::ColMatrix::FromColumns(std::move(cols));
}

std::vector<double> RowOf(const ml::ColMatrix& x, size_t row) {
  std::vector<double> features(x.cols());
  for (size_t j = 0; j < x.cols(); ++j) features[j] = x.at(row, j);
  return features;
}

std::shared_ptr<const Servable> TrainServable(uint64_t seed,
                                              size_t features = 6) {
  const ml::ColMatrix train = MakeMatrix(200, features, seed);
  Rng rng(seed + 1);
  std::vector<double> y(train.rows());
  for (size_t i = 0; i < train.rows(); ++i) {
    y[i] = train.at(i, 0) + 2.0 * train.at(i, 1) + 0.1 * rng.Normal();
  }
  ml::ForestParams params;
  params.n_trees = 12;
  params.seed = seed;
  auto rf = std::make_unique<ml::RandomForestRegressor>(params);
  EXPECT_TRUE(rf->Fit(train, y).ok());
  auto servable = Servable::Wrap(std::move(rf));
  EXPECT_TRUE(servable.ok());
  return *servable;
}

/// A regressor whose Predict blocks for a fixed delay per call — lets
/// tests hold the worker pool busy so queue-bound and drain-deadline
/// paths actually trigger.
class SlowRegressor : public ml::Regressor {
 public:
  explicit SlowRegressor(int delay_ms, double value = 7.0)
      : delay_ms_(delay_ms), value_(value) {}

  Status Fit(const ml::ColMatrix&, const std::vector<double>&) override {
    return Status::OK();
  }
  double PredictOne(const ml::ColMatrix&, size_t) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return value_;
  }
  std::vector<double> Predict(const ml::ColMatrix& x) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return std::vector<double>(x.rows(), value_);
  }
  Status SetParam(const std::string&, double) override { return Status::OK(); }
  std::unique_ptr<ml::Regressor> CloneUnfitted() const override {
    return std::make_unique<SlowRegressor>(delay_ms_, value_);
  }
  std::vector<double> FeatureImportances() const override { return {}; }
  std::string name() const override { return "slow"; }

 private:
  int delay_ms_;
  double value_;
};

std::shared_ptr<const Servable> MakeSlowServable(int delay_ms,
                                                 double value = 7.0) {
  auto servable =
      Servable::Wrap(std::make_unique<SlowRegressor>(delay_ms, value));
  EXPECT_TRUE(servable.ok());
  return *servable;
}

TEST(BatchServerTest, ServesSameResultsAsDirectPredict) {
  auto servable = TrainServable(31);
  const ml::ColMatrix queries = MakeMatrix(80, 6, 32);
  const std::vector<double> want = servable->Predict(queries);

  BatchServerOptions options;
  options.num_threads = 3;
  options.max_batch = 16;
  BatchServer server(servable, options);

  std::vector<std::future<Result<double>>> futures;
  for (size_t i = 0; i < queries.rows(); ++i) {
    auto submitted = server.Submit(RowOf(queries, i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<double> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << "request " << i;
    EXPECT_EQ(*got, want[i]) << "request " << i;
  }
}

TEST(BatchServerTest, ConcurrentClientsAndStats) {
  auto servable = TrainServable(33);
  const ml::ColMatrix queries = MakeMatrix(64, 6, 34);
  const std::vector<double> want = servable->Predict(queries);

  BatchServerOptions options;
  options.num_threads = 2;
  options.max_batch = 8;
  BatchServer server(servable, options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c) + 100);
      for (int i = 0; i < kPerClient; ++i) {
        const size_t row = rng.UniformInt(queries.rows());
        auto result = server.Forecast(RowOf(queries, row));
        if (!result.ok() || *result != want[row]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);

  const BatchServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_completed,
            static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.requests_rejected, 0u);
  EXPECT_EQ(stats.requests_abandoned, 0u);
  EXPECT_GE(stats.batches_run, 1u);
  EXPECT_LE(stats.batches_run, stats.requests_completed);
  EXPECT_GE(stats.mean_batch_size, 1.0);
  EXPECT_LE(stats.p50_latency_us, stats.p99_latency_us);
  EXPECT_LE(stats.p99_latency_us, stats.max_latency_us);
  EXPECT_GT(stats.rows_per_sec, 0.0);
}

TEST(BatchServerTest, StatszJsonMatchesStats) {
  auto servable = TrainServable(45);
  const ml::ColMatrix queries = MakeMatrix(24, 6, 46);
  BatchServerOptions options;
  options.num_threads = 2;
  options.max_batch = 8;
  BatchServer server(servable, options);
  for (size_t i = 0; i < queries.rows(); ++i) {
    ASSERT_TRUE(server.Forecast(RowOf(queries, i)).ok());
  }

  const BatchServerStats stats = server.Stats();
  const std::string json = server.StatszJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Exact counters agree with the struct readout.
  EXPECT_NE(json.find("\"requests_completed\":" +
                      std::to_string(stats.requests_completed)),
            std::string::npos);
  EXPECT_NE(
      json.find("\"batches_run\":" + std::to_string(stats.batches_run)),
      std::string::npos);
  // Admission counters surface for the net front-end's /statusz.
  EXPECT_NE(json.find("\"requests_rejected\":0"), std::string::npos);
  EXPECT_NE(json.find("\"requests_abandoned\":0"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":"), std::string::npos);
  EXPECT_NE(json.find("\"est_queue_wait_us\":"), std::string::npos);
  // Histogram blocks are present with the percentile keys dashboards read.
  for (const char* block : {"\"latency_us\":{", "\"batch_size\":{",
                            "\"queue_wait_us\":{"}) {
    EXPECT_NE(json.find(block), std::string::npos) << block;
  }
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(BatchServerTest, RejectsWrongFeatureCount) {
  BatchServer server(TrainServable(35), BatchServerOptions{});
  EXPECT_EQ(server.num_features(), 6u);
  auto result = server.Submit({1.0, 2.0});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchServerTest, HotSwapServesNewModel) {
  auto old_model = TrainServable(36);
  auto new_model = TrainServable(37);
  const ml::ColMatrix queries = MakeMatrix(4, 6, 38);

  BatchServerOptions options;
  options.num_threads = 1;
  options.coalesce_wait_us = 0;
  BatchServer server(old_model, options);
  auto before = server.Forecast(RowOf(queries, 0));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, old_model->PredictOne(queries, 0));

  server.UpdateModel(new_model);
  auto after = server.Forecast(RowOf(queries, 0));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, new_model->PredictOne(queries, 0));
}

TEST(BatchServerTest, KeyedSubmitServesPerRequestModels) {
  // One BatchServer, many models: the fab::net shard pattern. Rows carry
  // their own Servable and must be answered by it, not the default.
  auto model_a = TrainServable(51);
  auto model_b = TrainServable(52);
  const ml::ColMatrix queries = MakeMatrix(40, 6, 53);
  const std::vector<double> want_a = model_a->Predict(queries);
  const std::vector<double> want_b = model_b->Predict(queries);

  BatchServerOptions options;
  options.num_threads = 2;
  options.max_batch = 8;
  // No default model: the keyed path supplies one per request.
  BatchServer server(nullptr, options);

  std::vector<std::future<Result<double>>> futures_a;
  std::vector<std::future<Result<double>>> futures_b;
  for (size_t i = 0; i < queries.rows(); ++i) {
    auto a = server.SubmitTo(model_a, RowOf(queries, i));
    auto b = server.SubmitTo(model_b, RowOf(queries, i));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    futures_a.push_back(std::move(*a));
    futures_b.push_back(std::move(*b));
  }
  for (size_t i = 0; i < queries.rows(); ++i) {
    Result<double> got_a = futures_a[i].get();
    Result<double> got_b = futures_b[i].get();
    ASSERT_TRUE(got_a.ok());
    ASSERT_TRUE(got_b.ok());
    EXPECT_EQ(*got_a, want_a[i]) << "model_a row " << i;
    EXPECT_EQ(*got_b, want_b[i]) << "model_b row " << i;
  }
  // Interleaved two-model traffic still coalesces: fewer batches than
  // requests proves same-model runs were extracted, not row-at-a-time.
  const BatchServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_completed, 2 * queries.rows());
  EXPECT_LT(stats.batches_run, stats.requests_completed);

  // Keyed feature validation uses the request's model, not the default.
  auto bad = server.SubmitTo(model_a, {1.0});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(server.SubmitTo(nullptr, RowOf(queries, 0)).ok());
}

TEST(BatchServerTest, SubmitWithCallbackCompletesWithoutBlocking) {
  auto model = TrainServable(54);
  const ml::ColMatrix queries = MakeMatrix(16, 6, 55);
  const std::vector<double> want = model->Predict(queries);

  BatchServerOptions options;
  options.num_threads = 2;
  BatchServer server(nullptr, options);

  std::atomic<int> completions{0};
  std::atomic<int> mismatches{0};
  for (size_t i = 0; i < queries.rows(); ++i) {
    const double expect = want[i];
    Status admitted = server.SubmitWithCallback(
        model, RowOf(queries, i), [&, expect](Result<double> result) {
          if (!result.ok() || *result != expect) mismatches.fetch_add(1);
          completions.fetch_add(1);
        });
    ASSERT_TRUE(admitted.ok());
  }
  server.Shutdown();  // drains: every callback has fired by return
  EXPECT_EQ(completions.load(), static_cast<int>(queries.rows()));
  EXPECT_EQ(mismatches.load(), 0);

  // Admission-layer preconditions are synchronous errors.
  EXPECT_EQ(server
                .SubmitWithCallback(nullptr, RowOf(queries, 0),
                                    [](Result<double>) {})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server.SubmitWithCallback(model, RowOf(queries, 0), nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(BatchServerTest, BoundedQueueShedsWithUnavailable) {
  // One slow single-threaded worker + a 4-slot queue: once the worker is
  // busy and the queue is full, further submits must fail fast with
  // kUnavailable (the signal the HTTP layer turns into 429).
  BatchServerOptions options;
  options.num_threads = 1;
  options.max_batch = 1;
  options.coalesce_wait_us = 0;
  options.max_queue = 4;
  BatchServer server(MakeSlowServable(/*delay_ms=*/50), options);

  std::vector<std::future<Result<double>>> admitted;
  uint64_t rejected = 0;
  // 16 instantaneous submits against 1 in-flight + 4 queue slots: at
  // least one must be shed (the worker can't drain 16×50ms instantly).
  for (int i = 0; i < 16; ++i) {
    auto submitted = server.Submit({1.0});
    if (submitted.ok()) {
      admitted.push_back(std::move(*submitted));
    } else {
      EXPECT_EQ(submitted.status().code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  // Every admitted request still completes normally.
  for (auto& future : admitted) {
    Result<double> got = future.get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, 7.0);
  }
  const BatchServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_rejected, rejected);
  EXPECT_EQ(stats.requests_completed, admitted.size());
}

TEST(BatchServerTest, EstimatedQueueWaitTracksServiceTime) {
  BatchServerOptions options;
  options.num_threads = 1;
  options.max_batch = 1;
  options.coalesce_wait_us = 0;
  BatchServer server(MakeSlowServable(/*delay_ms=*/20), options);

  EXPECT_EQ(server.EstimatedQueueWaitUs(), 0.0);  // no samples yet
  ASSERT_TRUE(server.Forecast({1.0}).ok());       // seeds the EMA

  // Park the worker and stack the queue; the estimate must now predict a
  // wait in the order of queue_depth × ~20ms.
  std::vector<std::future<Result<double>>> futures;
  for (int i = 0; i < 6; ++i) {
    auto submitted = server.Submit({1.0});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  const double est = server.EstimatedQueueWaitUs();
  EXPECT_GT(est, 0.0);
  EXPECT_GT(server.QueueDepth(), 0u);
  for (auto& future : futures) ASSERT_TRUE(future.get().ok());
  EXPECT_EQ(server.QueueDepth(), 0u);
  // Single-row batches at ~20ms/row: the EMA must be in that decade.
  EXPECT_GT(est, 1000.0);
}

TEST(BatchServerTest, ShutdownDrainsAndRejectsNewWork) {
  auto servable = TrainServable(39);
  const ml::ColMatrix queries = MakeMatrix(32, 6, 40);
  BatchServerOptions options;
  options.num_threads = 2;
  BatchServer server(servable, options);

  std::vector<std::future<Result<double>>> futures;
  for (size_t i = 0; i < queries.rows(); ++i) {
    auto submitted = server.Submit(RowOf(queries, i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  server.Shutdown();
  // Every accepted request was answered before the workers exited.
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
  EXPECT_EQ(server.Stats().requests_completed, queries.rows());
  EXPECT_EQ(server.Stats().requests_abandoned, 0u);
  // New work is refused after shutdown.
  EXPECT_FALSE(server.Submit(RowOf(queries, 0)).ok());
}

TEST(BatchServerTest, ShutdownDeadlineNeverSilentlyDropsRequests) {
  // Regression for the drain-under-deadline contract: with a worker too
  // slow to drain the backlog inside shutdown_drain_ms, leftover
  // requests must resolve with an explicit kUnavailable — every future
  // fires, nothing hangs, and completed + abandoned accounts for every
  // accepted request.
  BatchServerOptions options;
  options.num_threads = 1;
  options.max_batch = 1;
  options.coalesce_wait_us = 0;
  options.shutdown_drain_ms = 60;  // ~1 slow batch worth of drain budget
  BatchServer server(MakeSlowServable(/*delay_ms=*/50), options);

  std::vector<std::future<Result<double>>> futures;
  for (int i = 0; i < 12; ++i) {
    auto submitted = server.Submit({1.0});
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  server.Shutdown();

  uint64_t served = 0;
  uint64_t abandoned = 0;
  for (auto& future : futures) {
    // Must not block: every promise was fulfilled by Shutdown's return.
    Result<double> got = future.get();
    if (got.ok()) {
      EXPECT_EQ(*got, 7.0);
      ++served;
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
      ++abandoned;
    }
  }
  EXPECT_EQ(served + abandoned, futures.size());
  EXPECT_GT(abandoned, 0u);  // 12×50ms cannot drain in 60ms
  const BatchServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_completed, served);
  EXPECT_EQ(stats.requests_abandoned, abandoned);
}

TEST(BatchServerTest, StartAfterShutdownRevivesServer) {
  auto servable = TrainServable(41);
  const ml::ColMatrix queries = MakeMatrix(8, 6, 42);
  BatchServerOptions options;
  options.num_threads = 2;
  BatchServer server(servable, options);

  ASSERT_TRUE(server.Forecast(RowOf(queries, 0)).ok());
  server.Shutdown();
  EXPECT_FALSE(server.Submit(RowOf(queries, 0)).ok());

  server.Start();
  auto revived = server.Forecast(RowOf(queries, 1));
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(*revived, servable->PredictOne(queries, 1));
  // Stats carried over across the restart: both eras are counted.
  EXPECT_GE(server.Stats().requests_completed, 2u);
}

TEST(BatchServerTest, StartStopStartStressJoinsCleanly) {
  // TSan-exercised (batch_server_test_tsan): hammer the lifecycle while
  // client threads submit continuously. Every accepted future must
  // resolve (no promise ever abandoned without an error), every cycle
  // must join cleanly, and the cv wait predicates must read only
  // mu_-guarded state.
  auto servable = TrainServable(43);
  const ml::ColMatrix queries = MakeMatrix(16, 6, 44);
  BatchServerOptions options;
  options.num_threads = 2;
  options.coalesce_wait_us = 50;
  BatchServer server(servable, options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      size_t row = static_cast<size_t>(c);
      while (!stop.load()) {
        auto submitted = server.Submit(RowOf(queries, row % queries.rows()));
        ++row;
        if (!submitted.ok()) continue;  // server between Shutdown and Start
        accepted.fetch_add(1);
        // Must resolve: Shutdown drains or errors every accepted request.
        if (submitted->get().ok()) {
          served.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (int cycle = 0; cycle < 10; ++cycle) {
    server.Shutdown();
    server.Start();
  }
  stop.store(true);
  for (auto& client : clients) client.join();
  server.Shutdown();
  EXPECT_EQ(accepted.load(), served.load() + failed.load());
  const BatchServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_completed, served.load());
  EXPECT_EQ(stats.requests_abandoned, failed.load());
}

}  // namespace
}  // namespace fab::serve
