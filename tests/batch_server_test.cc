#include "serve/batch_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "ml/forest.h"
#include "util/random.h"

namespace fab::serve {
namespace {

ml::ColMatrix MakeMatrix(size_t n, size_t f, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  return *ml::ColMatrix::FromColumns(std::move(cols));
}

std::vector<double> RowOf(const ml::ColMatrix& x, size_t row) {
  std::vector<double> features(x.cols());
  for (size_t j = 0; j < x.cols(); ++j) features[j] = x.at(row, j);
  return features;
}

std::shared_ptr<const Servable> TrainServable(uint64_t seed,
                                              size_t features = 6) {
  const ml::ColMatrix train = MakeMatrix(200, features, seed);
  Rng rng(seed + 1);
  std::vector<double> y(train.rows());
  for (size_t i = 0; i < train.rows(); ++i) {
    y[i] = train.at(i, 0) + 2.0 * train.at(i, 1) + 0.1 * rng.Normal();
  }
  ml::ForestParams params;
  params.n_trees = 12;
  params.seed = seed;
  auto rf = std::make_unique<ml::RandomForestRegressor>(params);
  EXPECT_TRUE(rf->Fit(train, y).ok());
  auto servable = Servable::Wrap(std::move(rf));
  EXPECT_TRUE(servable.ok());
  return *servable;
}

TEST(BatchServerTest, ServesSameResultsAsDirectPredict) {
  auto servable = TrainServable(31);
  const ml::ColMatrix queries = MakeMatrix(80, 6, 32);
  const std::vector<double> want = servable->Predict(queries);

  BatchServerOptions options;
  options.num_threads = 3;
  options.max_batch = 16;
  BatchServer server(servable, options);

  std::vector<std::future<double>> futures;
  for (size_t i = 0; i < queries.rows(); ++i) {
    auto submitted = server.Submit(RowOf(queries, i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(futures[i].get(), want[i]) << "request " << i;
  }
}

TEST(BatchServerTest, ConcurrentClientsAndStats) {
  auto servable = TrainServable(33);
  const ml::ColMatrix queries = MakeMatrix(64, 6, 34);
  const std::vector<double> want = servable->Predict(queries);

  BatchServerOptions options;
  options.num_threads = 2;
  options.max_batch = 8;
  BatchServer server(servable, options);

  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(c) + 100);
      for (int i = 0; i < kPerClient; ++i) {
        const size_t row = rng.UniformInt(queries.rows());
        auto result = server.Forecast(RowOf(queries, row));
        if (!result.ok() || *result != want[row]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);

  const BatchServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_completed,
            static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_GE(stats.batches_run, 1u);
  EXPECT_LE(stats.batches_run, stats.requests_completed);
  EXPECT_GE(stats.mean_batch_size, 1.0);
  EXPECT_LE(stats.p50_latency_us, stats.p99_latency_us);
  EXPECT_LE(stats.p99_latency_us, stats.max_latency_us);
  EXPECT_GT(stats.rows_per_sec, 0.0);
}

TEST(BatchServerTest, StatszJsonMatchesStats) {
  auto servable = TrainServable(45);
  const ml::ColMatrix queries = MakeMatrix(24, 6, 46);
  BatchServerOptions options;
  options.num_threads = 2;
  options.max_batch = 8;
  BatchServer server(servable, options);
  for (size_t i = 0; i < queries.rows(); ++i) {
    ASSERT_TRUE(server.Forecast(RowOf(queries, i)).ok());
  }

  const BatchServerStats stats = server.Stats();
  const std::string json = server.StatszJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Exact counters agree with the struct readout.
  EXPECT_NE(json.find("\"requests_completed\":" +
                      std::to_string(stats.requests_completed)),
            std::string::npos);
  EXPECT_NE(
      json.find("\"batches_run\":" + std::to_string(stats.batches_run)),
      std::string::npos);
  // Histogram blocks are present with the percentile keys dashboards read.
  for (const char* block : {"\"latency_us\":{", "\"batch_size\":{",
                            "\"queue_wait_us\":{"}) {
    EXPECT_NE(json.find(block), std::string::npos) << block;
  }
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(BatchServerTest, RejectsWrongFeatureCount) {
  BatchServer server(TrainServable(35), BatchServerOptions{});
  EXPECT_EQ(server.num_features(), 6u);
  auto result = server.Submit({1.0, 2.0});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchServerTest, HotSwapServesNewModel) {
  auto old_model = TrainServable(36);
  auto new_model = TrainServable(37);
  const ml::ColMatrix queries = MakeMatrix(4, 6, 38);

  BatchServerOptions options;
  options.num_threads = 1;
  options.coalesce_wait_us = 0;
  BatchServer server(old_model, options);
  auto before = server.Forecast(RowOf(queries, 0));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, old_model->PredictOne(queries, 0));

  server.UpdateModel(new_model);
  auto after = server.Forecast(RowOf(queries, 0));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, new_model->PredictOne(queries, 0));
}

TEST(BatchServerTest, ShutdownDrainsAndRejectsNewWork) {
  auto servable = TrainServable(39);
  const ml::ColMatrix queries = MakeMatrix(32, 6, 40);
  BatchServerOptions options;
  options.num_threads = 2;
  BatchServer server(servable, options);

  std::vector<std::future<double>> futures;
  for (size_t i = 0; i < queries.rows(); ++i) {
    auto submitted = server.Submit(RowOf(queries, i));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
  }
  server.Shutdown();
  // Every accepted request was answered before the workers exited.
  for (auto& future : futures) (void)future.get();
  EXPECT_EQ(server.Stats().requests_completed, queries.rows());
  // New work is refused after shutdown.
  EXPECT_FALSE(server.Submit(RowOf(queries, 0)).ok());
}

TEST(BatchServerTest, StartAfterShutdownRevivesServer) {
  auto servable = TrainServable(41);
  const ml::ColMatrix queries = MakeMatrix(8, 6, 42);
  BatchServerOptions options;
  options.num_threads = 2;
  BatchServer server(servable, options);

  ASSERT_TRUE(server.Forecast(RowOf(queries, 0)).ok());
  server.Shutdown();
  EXPECT_FALSE(server.Submit(RowOf(queries, 0)).ok());

  server.Start();
  auto revived = server.Forecast(RowOf(queries, 1));
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(*revived, servable->PredictOne(queries, 1));
  // Stats carried over across the restart: both eras are counted.
  EXPECT_GE(server.Stats().requests_completed, 2u);
}

TEST(BatchServerTest, StartStopStartStressJoinsCleanly) {
  // TSan-exercised (batch_server_test_tsan): hammer the lifecycle while
  // client threads submit continuously. Every accepted future must
  // resolve (no promise ever abandoned), every cycle must join cleanly,
  // and the cv wait predicates must read only mu_-guarded state.
  auto servable = TrainServable(43);
  const ml::ColMatrix queries = MakeMatrix(16, 6, 44);
  BatchServerOptions options;
  options.num_threads = 2;
  options.coalesce_wait_us = 50;
  BatchServer server(servable, options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> resolved{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      size_t row = static_cast<size_t>(c);
      while (!stop.load()) {
        auto submitted = server.Submit(RowOf(queries, row % queries.rows()));
        ++row;
        if (!submitted.ok()) continue;  // server between Shutdown and Start
        accepted.fetch_add(1);
        (void)submitted->get();  // must resolve: Shutdown drains the queue
        resolved.fetch_add(1);
      }
    });
  }
  for (int cycle = 0; cycle < 10; ++cycle) {
    server.Shutdown();
    server.Start();
  }
  stop.store(true);
  for (auto& client : clients) client.join();
  server.Shutdown();
  EXPECT_EQ(accepted.load(), resolved.load());
  EXPECT_EQ(server.Stats().requests_completed, accepted.load());
}

}  // namespace
}  // namespace fab::serve
