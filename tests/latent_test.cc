#include "sim/latent.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fab::sim {
namespace {

LatentConfig SmallConfig(uint64_t seed = 42) {
  LatentConfig config;
  config.start = Date(2016, 7, 1);
  config.end = Date(2019, 12, 31);
  config.seed = seed;
  return config;
}

TEST(LatentTest, RejectsInvalidConfig) {
  LatentConfig config = SmallConfig();
  config.end = config.start;
  EXPECT_FALSE(GenerateLatentState(config).ok());
  config = SmallConfig();
  config.btc_price0 = -1.0;
  EXPECT_FALSE(GenerateLatentState(config).ok());
}

TEST(LatentTest, SizesMatchCalendar) {
  const auto state = GenerateLatentState(SmallConfig());
  ASSERT_TRUE(state.ok());
  const size_t expected =
      static_cast<size_t>(Date(2019, 12, 31) - Date(2016, 7, 1)) + 1;
  EXPECT_EQ(state->num_days(), expected);
  EXPECT_EQ(state->btc_close.size(), expected);
  EXPECT_EQ(state->regime.size(), expected);
  EXPECT_EQ(state->flows.size(), expected);
}

TEST(LatentTest, DeterministicInSeed) {
  const auto a = GenerateLatentState(SmallConfig(7));
  const auto b = GenerateLatentState(SmallConfig(7));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->btc_close, b->btc_close);
  EXPECT_EQ(a->flows, b->flows);
  EXPECT_EQ(a->macro_factor, b->macro_factor);
}

TEST(LatentTest, DifferentSeedsDiffer) {
  const auto a = GenerateLatentState(SmallConfig(1));
  const auto b = GenerateLatentState(SmallConfig(2));
  EXPECT_NE(a->btc_close, b->btc_close);
}

TEST(LatentTest, PricesPositiveAndOhlcOrdered) {
  const auto state = GenerateLatentState(SmallConfig());
  for (size_t t = 0; t < state->num_days(); ++t) {
    EXPECT_GT(state->btc_low[t], 0.0);
    EXPECT_LE(state->btc_low[t], state->btc_open[t]);
    EXPECT_LE(state->btc_low[t], state->btc_close[t]);
    EXPECT_GE(state->btc_high[t], state->btc_open[t]);
    EXPECT_GE(state->btc_high[t], state->btc_close[t]);
    EXPECT_GT(state->btc_volume_usd[t], 0.0);
  }
}

TEST(LatentTest, OpenEqualsPreviousClose) {
  const auto state = GenerateLatentState(SmallConfig());
  for (size_t t = 1; t < state->num_days(); ++t) {
    EXPECT_DOUBLE_EQ(state->btc_open[t], state->btc_close[t - 1]);
  }
}

TEST(LatentTest, AdoptionMonotoneInExpectationAndBounded) {
  const auto state = GenerateLatentState(SmallConfig());
  for (double a : state->adoption) {
    EXPECT_GT(a, 0.0);
    EXPECT_LT(a, 1.0);
  }
  // Logistic growth: end adoption clearly above start.
  EXPECT_GT(state->adoption.back(), state->adoption.front());
}

TEST(LatentTest, MacroFactorBounded) {
  const auto state = GenerateLatentState(SmallConfig());
  for (double m : state->macro_factor) {
    EXPECT_GE(m, -1.5);
    EXPECT_LE(m, 1.5);
  }
}

TEST(LatentTest, MacroSmoothLagsMacroFactor) {
  const auto state = GenerateLatentState(SmallConfig());
  // Smoothed macro is less volatile than the raw factor.
  double raw_var = 0.0, smooth_var = 0.0;
  for (size_t t = 1; t < state->num_days(); ++t) {
    raw_var += std::pow(state->macro_factor[t] - state->macro_factor[t - 1], 2);
    smooth_var +=
        std::pow(state->macro_smooth[t] - state->macro_smooth[t - 1], 2);
  }
  EXPECT_LT(smooth_var, raw_var / 10.0);
}

TEST(LatentTest, FindDayMapsDates) {
  const auto state = GenerateLatentState(SmallConfig());
  EXPECT_EQ(state->FindDay(Date(2016, 7, 1)), 0);
  EXPECT_EQ(state->FindDay(Date(2016, 7, 11)), 10);
  EXPECT_EQ(state->FindDay(Date(2030, 1, 1)), -1);
  EXPECT_EQ(state->FindDay(Date(2010, 1, 1)), -1);
}

TEST(LatentTest, EraDriftMatchesCycleSigns) {
  EXPECT_GT(EraDrift(Date(2017, 8, 1)), 0.0);   // 2017 bull
  EXPECT_LT(EraDrift(Date(2018, 2, 1)), 0.0);   // 2018 bear
  EXPECT_GT(EraDrift(Date(2020, 12, 1)), 0.0);  // 2020-21 bull
  EXPECT_LT(EraDrift(Date(2022, 4, 1)), 0.0);   // 2022 bear
  EXPECT_GT(EraDrift(Date(2023, 3, 1)), 0.0);   // 2023 recovery
}

TEST(LatentTest, BullRegimesOutnumberBearInEasyMoney) {
  // Over the 2016-2019 window macro is mostly supportive, so bull days
  // should not be dominated by bear days.
  const auto state = GenerateLatentState(SmallConfig());
  int bull = 0, bear = 0;
  for (Regime r : state->regime) {
    bull += (r == Regime::kBull);
    bear += (r == Regime::kBear);
  }
  EXPECT_GT(bull, 0);
  EXPECT_GT(bear, 0);
  EXPECT_GT(static_cast<double>(bull) / bear, 0.7);
}

TEST(LatentTest, PriceCycleShapeRoughlyMatchesHistory) {
  LatentConfig config;
  config.seed = 42;  // the library's default calibration seed
  const auto state = GenerateLatentState(config);
  ASSERT_TRUE(state.ok());
  auto price_on = [&](Date d) {
    return state->btc_close[static_cast<size_t>(state->FindDay(d))];
  };
  const double p2017_top = price_on(Date(2017, 12, 17));
  const double p2018_bottom = price_on(Date(2018, 12, 15));
  const double p2021_top = price_on(Date(2021, 11, 10));
  const double p2022_bottom = price_on(Date(2022, 11, 21));
  // Cycle shape: a big 2017 bull, a deep 2018 bear, a larger 2021 top,
  // a 2022 bear. Exact levels are not asserted.
  EXPECT_GT(p2017_top, 4.0 * price_on(Date(2017, 1, 1)));
  EXPECT_LT(p2018_bottom, 0.5 * p2017_top);
  EXPECT_GT(p2021_top, 2.0 * p2017_top);
  EXPECT_LT(p2022_bottom, 0.4 * p2021_top);
}

}  // namespace
}  // namespace fab::sim
