#include "explain/permutation.h"

#include <gtest/gtest.h>

#include "ml/forest.h"
#include "util/random.h"

namespace fab::explain {
namespace {

ml::Dataset MakeDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> signal(n), weak(n), noise(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = rng.Normal();
    weak[i] = rng.Normal();
    noise[i] = rng.Normal();
    y[i] = 3.0 * signal[i] + 0.4 * weak[i] + 0.3 * rng.Normal();
  }
  ml::Dataset d;
  d.x = *ml::ColMatrix::FromColumns({signal, weak, noise});
  d.y = std::move(y);
  d.feature_names = {"signal", "weak", "noise"};
  return d;
}

class PermutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    train_ = MakeDataset(600, 3);
    valid_ = MakeDataset(300, 4);
    ml::ForestParams params;
    params.n_trees = 30;
    params.max_depth = 8;
    model_ = std::make_unique<ml::RandomForestRegressor>(params);
    ASSERT_TRUE(model_->Fit(train_.x, train_.y).ok());
  }

  ml::Dataset train_, valid_;
  std::unique_ptr<ml::RandomForestRegressor> model_;
};

TEST_F(PermutationTest, RanksFeaturesByTrueStrength) {
  PermutationOptions options;
  options.n_repeats = 3;
  const auto imp = PermutationImportance(*model_, valid_, options);
  ASSERT_TRUE(imp.ok());
  ASSERT_EQ(imp->size(), 3u);
  EXPECT_GT((*imp)[0], (*imp)[1]);
  EXPECT_GT((*imp)[1], (*imp)[2]);
  // The dominant feature's shuffle must hurt a lot.
  EXPECT_GT((*imp)[0], 1.0);
  // The pure-noise feature contributes nothing (allow small jitter).
  EXPECT_NEAR((*imp)[2], 0.0, 0.2);
}

TEST_F(PermutationTest, DeterministicInSeed) {
  PermutationOptions options;
  options.n_repeats = 2;
  options.seed = 55;
  const auto a = PermutationImportance(*model_, valid_, options);
  const auto b = PermutationImportance(*model_, valid_, options);
  EXPECT_EQ(*a, *b);
}

TEST_F(PermutationTest, LeavesInputUntouched) {
  const std::vector<double> before = valid_.x.column(0);
  PermutationOptions options;
  options.n_repeats = 1;
  ASSERT_TRUE(PermutationImportance(*model_, valid_, options).ok());
  EXPECT_EQ(valid_.x.column(0), before);
}

TEST_F(PermutationTest, RejectsBadOptions) {
  PermutationOptions options;
  options.n_repeats = 0;
  EXPECT_FALSE(PermutationImportance(*model_, valid_, options).ok());
  ml::Dataset tiny;
  tiny.x = *ml::ColMatrix::FromColumns({{1.0}});
  tiny.y = {1.0};
  options.n_repeats = 1;
  EXPECT_FALSE(PermutationImportance(*model_, tiny, options).ok());
}

}  // namespace
}  // namespace fab::explain
