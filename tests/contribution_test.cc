#include "core/contribution.h"

#include <gtest/gtest.h>

namespace fab::core {
namespace {

ScenarioDataset MakeScenario() {
  ScenarioDataset scenario;
  scenario.period = StudyPeriod::k2019;
  scenario.window = 7;
  scenario.data.feature_names = {"m1", "m2", "t1", "t2", "t3", "s1"};
  scenario.categories = {
      sim::DataCategory::kMacro,     sim::DataCategory::kMacro,
      sim::DataCategory::kTechnical, sim::DataCategory::kTechnical,
      sim::DataCategory::kTechnical, sim::DataCategory::kSentiment};
  return scenario;
}

TEST(ContributionTest, FactorsAreSelectedOverCandidates) {
  const ScenarioDataset scenario = MakeScenario();
  const auto result = ComputeContributions(scenario, {"m1", "t1", "t2"});
  ASSERT_TRUE(result.ok());
  // Categories with zero candidates are omitted: macro, technical,
  // sentiment remain.
  ASSERT_EQ(result->size(), 3u);
  for (const auto& c : *result) {
    if (c.category == sim::DataCategory::kMacro) {
      EXPECT_EQ(c.candidates, 2u);
      EXPECT_EQ(c.selected, 1u);
      EXPECT_DOUBLE_EQ(c.contribution_factor, 0.5);
    } else if (c.category == sim::DataCategory::kTechnical) {
      EXPECT_EQ(c.candidates, 3u);
      EXPECT_EQ(c.selected, 2u);
      EXPECT_NEAR(c.contribution_factor, 2.0 / 3.0, 1e-12);
    } else if (c.category == sim::DataCategory::kSentiment) {
      EXPECT_EQ(c.selected, 0u);
      EXPECT_DOUBLE_EQ(c.contribution_factor, 0.0);
    } else {
      FAIL() << "unexpected category";
    }
  }
}

TEST(ContributionTest, EmptySelectionGivesZeros) {
  const ScenarioDataset scenario = MakeScenario();
  const auto result = ComputeContributions(scenario, {});
  ASSERT_TRUE(result.ok());
  for (const auto& c : *result) {
    EXPECT_EQ(c.selected, 0u);
    EXPECT_DOUBLE_EQ(c.contribution_factor, 0.0);
  }
}

TEST(ContributionTest, UnknownFeatureFails) {
  const ScenarioDataset scenario = MakeScenario();
  EXPECT_FALSE(ComputeContributions(scenario, {"not_a_feature"}).ok());
}

TEST(ContributionTest, FullSelectionGivesOnes) {
  const ScenarioDataset scenario = MakeScenario();
  const auto result =
      ComputeContributions(scenario, scenario.data.feature_names);
  for (const auto& c : *result) {
    EXPECT_DOUBLE_EQ(c.contribution_factor, 1.0);
  }
}

}  // namespace
}  // namespace fab::core
