#include "core/contribution.h"

#include <gtest/gtest.h>

namespace fab::core {
namespace {

ScenarioDataset MakeScenario() {
  ScenarioDataset scenario;
  scenario.period = StudyPeriod::k2019;
  scenario.window = 7;
  scenario.data.feature_names = {"m1", "m2", "t1", "t2", "t3", "s1"};
  scenario.categories = {
      sim::DataCategory::kMacro,     sim::DataCategory::kMacro,
      sim::DataCategory::kTechnical, sim::DataCategory::kTechnical,
      sim::DataCategory::kTechnical, sim::DataCategory::kSentiment};
  return scenario;
}

TEST(ContributionTest, FactorsAreSelectedOverCandidates) {
  const ScenarioDataset scenario = MakeScenario();
  const auto result = ComputeContributions(scenario, {"m1", "t1", "t2"});
  ASSERT_TRUE(result.ok());
  // Categories with zero candidates are omitted: macro, technical,
  // sentiment remain.
  ASSERT_EQ(result->size(), 3u);
  for (const auto& c : *result) {
    if (c.category == sim::DataCategory::kMacro) {
      EXPECT_EQ(c.candidates, 2u);
      EXPECT_EQ(c.selected, 1u);
      EXPECT_DOUBLE_EQ(c.contribution_factor, 0.5);
    } else if (c.category == sim::DataCategory::kTechnical) {
      EXPECT_EQ(c.candidates, 3u);
      EXPECT_EQ(c.selected, 2u);
      EXPECT_NEAR(c.contribution_factor, 2.0 / 3.0, 1e-12);
    } else if (c.category == sim::DataCategory::kSentiment) {
      EXPECT_EQ(c.selected, 0u);
      EXPECT_DOUBLE_EQ(c.contribution_factor, 0.0);
    } else {
      FAIL() << "unexpected category";
    }
  }
}

TEST(ContributionTest, EmptySelectionGivesZeros) {
  const ScenarioDataset scenario = MakeScenario();
  const auto result = ComputeContributions(scenario, {});
  ASSERT_TRUE(result.ok());
  for (const auto& c : *result) {
    EXPECT_EQ(c.selected, 0u);
    EXPECT_DOUBLE_EQ(c.contribution_factor, 0.0);
  }
}

TEST(ContributionTest, UnknownFeatureFails) {
  const ScenarioDataset scenario = MakeScenario();
  EXPECT_FALSE(ComputeContributions(scenario, {"not_a_feature"}).ok());
}

TEST(ContributionTest, FullSelectionGivesOnes) {
  const ScenarioDataset scenario = MakeScenario();
  const auto result =
      ComputeContributions(scenario, scenario.data.feature_names);
  for (const auto& c : *result) {
    EXPECT_DOUBLE_EQ(c.contribution_factor, 1.0);
  }
}

// Pins the deterministic-emission contract: rows come out in catalog index
// order (AllCategories()), never in the hash order of the internal
// accumulator maps. A regression to hash-order emission would reorder these
// rows on some standard libraries and break the paper's Fig. 3/4 tables.
TEST(ContributionTest, RowsEmittedInCatalogIndexOrder) {
  const ScenarioDataset scenario = MakeScenario();
  const auto result = ComputeContributions(scenario, {"m1", "t1", "s1"});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ((*result)[0].category, sim::DataCategory::kMacro);
  EXPECT_EQ((*result)[1].category, sim::DataCategory::kTechnical);
  EXPECT_EQ((*result)[2].category, sim::DataCategory::kSentiment);

  // Same selection, different order: output order must not change.
  const auto reversed = ComputeContributions(scenario, {"s1", "t1", "m1"});
  ASSERT_TRUE(reversed.ok());
  ASSERT_EQ(reversed->size(), 3u);
  for (size_t i = 0; i < result->size(); ++i) {
    EXPECT_EQ((*reversed)[i].category, (*result)[i].category);
    EXPECT_EQ((*reversed)[i].selected, (*result)[i].selected);
  }
}

}  // namespace
}  // namespace fab::core
