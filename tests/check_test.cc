#include "util/check.h"

#include <gtest/gtest.h>

#include <string>

#include "util/status.h"

namespace fab {
namespace {

TEST(CheckTest, PassingCheckHasNoEffect) {
  FAB_CHECK(1 + 1 == 2);
  FAB_CHECK(true) << "this message is never rendered";
  SUCCEED();
}

TEST(CheckTest, PassingCheckDoesNotEvaluateMessageOperands) {
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 7;
  };
  FAB_CHECK(true) << "side effect: " << count();
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckDeathTest, FailingCheckAbortsWithExpressionAndLocation) {
  EXPECT_DEATH(FAB_CHECK(2 + 2 == 5), "FAB_CHECK failed at .*check_test.cc");
  EXPECT_DEATH(FAB_CHECK(2 + 2 == 5), "2 \\+ 2 == 5");
}

TEST(CheckDeathTest, FailingCheckRendersStreamedMessage) {
  const int lhs = 3;
  EXPECT_DEATH(FAB_CHECK(lhs == 4) << "lhs was " << lhs, "lhs was 3");
}

TEST(CheckTest, CheckOkPassesOnOkStatusAndOkResult) {
  FAB_CHECK_OK(Status::OK());
  const Result<int> result = 42;
  FAB_CHECK_OK(result) << "never rendered";
  SUCCEED();
}

TEST(CheckDeathTest, CheckOkAbortsOnErrorStatus) {
  EXPECT_DEATH(FAB_CHECK_OK(Status::InvalidArgument("bad shape")),
               "InvalidArgument: bad shape");
}

TEST(CheckDeathTest, CheckOkAbortsOnErrorResult) {
  const Result<int> result = Status::NotFound("missing feature");
  EXPECT_DEATH(FAB_CHECK_OK(result) << "while selecting",
               "NotFound: missing feature.*while selecting");
}

TEST(CheckTest, CheckOkEvaluatesExpressionExactlyOnceOnSuccess) {
  // The expression lives in the macro's for-init-statement, so passing a
  // side-effecting call (Pop(), Submit(), ...) is safe.
  int calls = 0;
  auto ok_with_side_effect = [&calls]() {
    ++calls;
    return Status::OK();
  };
  FAB_CHECK_OK(ok_with_side_effect());
  EXPECT_EQ(calls, 1);
}

TEST(CheckDeathTest, CheckOkEvaluatesExpressionExactlyOnceOnFailure) {
  // The status message stamps the call count: the death output reading
  // "call #1" proves the failing expression ran exactly once before the
  // abort (a double evaluation would render "call #2").
  int calls = 0;
  auto failing_with_side_effect = [&calls]() {
    ++calls;
    return Status::Internal("call #" + std::to_string(calls));
  };
  EXPECT_DEATH(FAB_CHECK_OK(failing_with_side_effect()),
               "Internal: call #1 ");
}

TEST(CheckTest, CheckOkComposesWithPlainIf) {
  // The macro's internal if/else must not capture a user-written else.
  bool took_else = false;
  if (false)
    FAB_CHECK_OK(Status::OK());
  else
    took_else = true;
  EXPECT_TRUE(took_else);
}

#ifdef NDEBUG
TEST(CheckTest, DcheckCompiledOutInRelease) {
  int evaluations = 0;
  auto fails = [&evaluations]() {
    ++evaluations;
    return false;
  };
  FAB_DCHECK(fails()) << "not rendered in release";
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(CheckDeathTest, DcheckActiveInDebug) {
  EXPECT_DEATH(FAB_DCHECK(false) << "debug dcheck", "debug dcheck");
}
#endif

}  // namespace
}  // namespace fab
