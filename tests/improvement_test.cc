#include "core/improvement.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace fab::core {
namespace {

/// A scenario where the macro feature is weak and the technical features
/// carry the signal, so single-category comparisons are predictable.
ScenarioDataset MakeScenario(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 400;
  std::vector<double> strong(n), strong2(n), weak(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    strong[i] = rng.Normal();
    strong2[i] = rng.Normal();
    weak[i] = rng.Normal();
    y[i] = 2.0 * strong[i] + strong2[i] + 0.05 * weak[i] + 0.2 * rng.Normal();
  }
  ScenarioDataset scenario;
  scenario.period = StudyPeriod::k2019;
  scenario.window = 7;
  scenario.data.x = *ml::ColMatrix::FromColumns({strong, strong2, weak});
  scenario.data.y = std::move(y);
  scenario.data.feature_names = {"tech1", "tech2", "macro1"};
  scenario.categories = {sim::DataCategory::kTechnical,
                         sim::DataCategory::kTechnical,
                         sim::DataCategory::kMacro};
  return scenario;
}

ImprovementOptions FastOptions() {
  ImprovementOptions options;
  options.cv_folds = 3;
  options.rf.n_trees = 15;
  options.rf.max_depth = 6;
  options.rf.max_features = 1.0;
  options.xgb.n_rounds = 30;
  options.xgb.max_depth = 3;
  return options;
}

TEST(ImprovementTest, WeakCategoryBenefitsMost) {
  const ScenarioDataset scenario = MakeScenario(3);
  const auto result = RunImprovementExperiment(
      scenario, scenario.data.feature_names, ModelKind::kRandomForest,
      FastOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->per_category.size(), 2u);
  double tech_pct = 0.0, macro_pct = 0.0;
  for (const auto& c : result->per_category) {
    if (c.category == sim::DataCategory::kTechnical) tech_pct = c.improvement_pct;
    if (c.category == sim::DataCategory::kMacro) macro_pct = c.improvement_pct;
  }
  // Macro alone barely predicts: diversity helps it enormously.
  EXPECT_GT(macro_pct, 200.0);
  // Technical alone is nearly sufficient.
  EXPECT_LT(tech_pct, 50.0);
  EXPECT_GT(result->MeanImprovementPct(), 0.0);
}

TEST(ImprovementTest, ImprovementFormulaConsistent) {
  const ScenarioDataset scenario = MakeScenario(5);
  const auto result = RunImprovementExperiment(
      scenario, scenario.data.feature_names, ModelKind::kRandomForest,
      FastOptions());
  ASSERT_TRUE(result.ok());
  for (const auto& c : result->per_category) {
    EXPECT_DOUBLE_EQ(c.diverse_mse, result->diverse_mse);
    EXPECT_NEAR(c.improvement_pct,
                100.0 * (c.single_mse - c.diverse_mse) / c.diverse_mse, 1e-9);
  }
}

TEST(ImprovementTest, GbdtVariantRuns) {
  const ScenarioDataset scenario = MakeScenario(7);
  const auto result = RunImprovementExperiment(
      scenario, scenario.data.feature_names, ModelKind::kGbdt, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model, ModelKind::kGbdt);
  EXPECT_GT(result->diverse_mse, 0.0);
}

TEST(ImprovementTest, RejectsEmptyFinalVector) {
  const ScenarioDataset scenario = MakeScenario(9);
  EXPECT_FALSE(RunImprovementExperiment(scenario, {},
                                        ModelKind::kRandomForest,
                                        FastOptions())
                   .ok());
}

TEST(ImprovementTest, RejectsUnknownFeature) {
  const ScenarioDataset scenario = MakeScenario(11);
  EXPECT_FALSE(RunImprovementExperiment(scenario, {"bogus"},
                                        ModelKind::kRandomForest,
                                        FastOptions())
                   .ok());
}

TEST(ImprovementTest, MeanOfEmptyIsZero) {
  ImprovementResult r;
  EXPECT_DOUBLE_EQ(r.MeanImprovementPct(), 0.0);
}

}  // namespace
}  // namespace fab::core
