#include "sim/onchain_eth.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/stats.h"

#include "sim/market_sim.h"

namespace fab::sim {
namespace {

/// Shared fixture covering the burn activation (Aug 2021) and the merge
/// (Sep 2022).
class OnChainEthTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MarketSimConfig config;
    config.latent.start = Date(2017, 6, 1);  // covers the USDC launch
    config.latent.end = Date(2023, 6, 30);
    config.seed = 314;
    config.include_eth = true;
    market_ =
        std::make_unique<SimulatedMarket>(std::move(SimulateMarket(config)).value());
  }
  static void TearDownTestSuite() { market_.reset(); }
  static std::unique_ptr<const SimulatedMarket> market_;

  const table::Column& Col(const char* name) {
    return **market_->metrics.GetColumn(name);
  }
  size_t Day(Date d) {
    return static_cast<size_t>(market_->latent.FindDay(d));
  }
};

std::unique_ptr<const SimulatedMarket> OnChainEthTest::market_;

TEST_F(OnChainEthTest, FamilyRegisteredUnderEthCategory) {
  size_t eth_columns = 0;
  for (const auto& m : market_->catalog.metrics()) {
    if (m.category == DataCategory::kOnChainEth) {
      EXPECT_EQ(m.name.rfind("eth_", 0), 0u) << m.name;
      ++eth_columns;
    }
  }
  EXPECT_GE(eth_columns, 20u);
}

TEST_F(OnChainEthTest, CoreSeriesPositive) {
  for (const char* name :
       {"eth_PriceUSD", "eth_SplyCur", "eth_GasUsedTot", "eth_DefiTvlUSD",
        "eth_CapMrktCurUSD", "eth_TxCnt", "eth_FeeTotUSD", "eth_CapRealUSD"}) {
    const table::Column& c = Col(name);
    for (size_t t = 0; t < c.size(); t += 71) {
      ASSERT_TRUE(c.is_valid(t)) << name;
      EXPECT_GT(c.value(t), 0.0) << name;
    }
  }
}

TEST_F(OnChainEthTest, SupplyGrowthSlowsAfterMerge) {
  const table::Column& supply = Col("eth_SplyCur");
  // Average daily growth in a pre-merge year vs post-merge period.
  const size_t pre_a = Day(Date(2020, 1, 1));
  const size_t pre_b = Day(Date(2021, 1, 1));
  const size_t post_a = Day(Date(2022, 10, 1));
  const size_t post_b = Day(Date(2023, 6, 1));
  const double pre_growth = (supply.value(pre_b) - supply.value(pre_a)) /
                            static_cast<double>(pre_b - pre_a);
  const double post_growth = (supply.value(post_b) - supply.value(post_a)) /
                             static_cast<double>(post_b - post_a);
  EXPECT_GT(pre_growth, 10000.0);       // PoW issuance ~13.5k/day
  EXPECT_LT(post_growth, pre_growth / 2.0);  // merge + burn
}

TEST_F(OnChainEthTest, StakingRampsFromDec2020) {
  const table::Column& staked = Col("eth_SplyStaked");
  const double before = staked.value(Day(Date(2020, 11, 1)));
  const double after = staked.value(Day(Date(2023, 5, 1)));
  EXPECT_LT(before, 2e6);
  EXPECT_GT(after, 10e6);
}

TEST_F(OnChainEthTest, MarketCapIsPriceTimesSupply) {
  const table::Column& price = Col("eth_PriceUSD");
  const table::Column& supply = Col("eth_SplyCur");
  const table::Column& cap = Col("eth_CapMrktCurUSD");
  for (size_t t = 0; t < cap.size(); t += 97) {
    EXPECT_NEAR(cap.value(t), price.value(t) * supply.value(t),
                1e-6 * cap.value(t));
  }
}

TEST_F(OnChainEthTest, BucketCountsDecreaseWithThreshold) {
  const table::Column& c1 = Col("eth_AdrBalNtv1Cnt");
  const table::Column& c1k = Col("eth_AdrBalNtv1KCnt");
  for (size_t t = 0; t < c1.size(); t += 83) {
    EXPECT_GT(c1.value(t), c1k.value(t));
  }
}

TEST_F(OnChainEthTest, EthCorrelatesWithBtcButIsNotAClone) {
  const table::Column& eth = Col("eth_PriceUSD");
  std::vector<double> eth_ret, btc_ret;
  for (size_t t = 1; t < eth.size(); ++t) {
    eth_ret.push_back(std::log(eth.value(t) / eth.value(t - 1)));
    btc_ret.push_back(std::log(market_->latent.btc_close[t] /
                               market_->latent.btc_close[t - 1]));
  }
  const double corr = stats::PearsonCorrelation(eth_ret, btc_ret);
  EXPECT_GT(corr, 0.5);   // strongly coupled, like the real pair
  EXPECT_LT(corr, 0.98);  // but with genuine idiosyncratic dynamics
}

TEST(OnChainEthStandaloneTest, RejectsMismatchedTable) {
  LatentConfig config;
  config.start = Date(2020, 1, 1);
  config.end = Date(2020, 6, 30);
  const auto latent = GenerateLatentState(config);
  auto table = table::Table::Create(DailyRange(Date(2020, 1, 1),
                                               Date(2020, 1, 10)));
  MetricCatalog catalog;
  EXPECT_FALSE(AddEthOnChainMetrics(*latent, 1, &table.value(), &catalog).ok());
}

}  // namespace
}  // namespace fab::sim
