#include "core/experiments.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "serve/registry.h"

namespace fab::core {
namespace {

/// A deliberately tiny configuration so the full pipeline runs in seconds.
ExperimentConfig TinyConfig(const std::string& cache_dir) {
  ExperimentConfig config;
  config.seed = 11;
  config.fast = true;
  config.cache_dir = cache_dir;
  config.fra.rf.n_trees = 8;
  config.fra.rf.max_depth = 5;
  config.fra.rf.max_features = 0.4;
  config.fra.xgb.n_rounds = 12;
  config.fra.xgb.max_depth = 3;
  config.fra.pfi_repeats = 1;
  config.feature_vector.rf = config.fra.rf;
  config.feature_vector.shap_row_limit = 40;
  config.scoring_rf = config.fra.rf;
  config.improvement.cv_folds = 3;
  config.improvement.rf = config.fra.rf;
  config.improvement.xgb = config.fra.xgb;
  config.serving_mlp.hidden = {8, 4};
  config.serving_mlp.epochs = 10;
  return config;
}

class ExperimentsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cache_dir_ = ::testing::TempDir() + "fab_exp_cache";
    std::filesystem::remove_all(cache_dir_);
  }
  void TearDown() override { std::filesystem::remove_all(cache_dir_); }
  std::string cache_dir_;
};

TEST_F(ExperimentsTest, FromEnvReadsVariables) {
  ::setenv("FAB_SEED", "123", 1);
  ::setenv("FAB_FAST", "1", 1);
  ::setenv("FAB_CACHE_DIR", "/tmp/somewhere", 1);
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  EXPECT_EQ(config.seed, 123u);
  EXPECT_TRUE(config.fast);
  EXPECT_EQ(config.cache_dir, "/tmp/somewhere");
  ::unsetenv("FAB_SEED");
  ::unsetenv("FAB_FAST");
  ::unsetenv("FAB_CACHE_DIR");
  const ExperimentConfig defaults = ExperimentConfig::FromEnv();
  EXPECT_EQ(defaults.seed, 42u);
  EXPECT_FALSE(defaults.fast);
}

TEST_F(ExperimentsTest, MarketIsMemoized) {
  Experiments ex(TinyConfig(cache_dir_));
  const auto a = ex.Market();
  const auto b = ex.Market();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);  // same pointer
  EXPECT_GT((*a)->metrics.num_columns(), 200u);
}

TEST_F(ExperimentsTest, ScenarioIsMemoized) {
  Experiments ex(TinyConfig(cache_dir_));
  const auto a = ex.Scenario(StudyPeriod::k2019, 7);
  const auto b = ex.Scenario(StudyPeriod::k2019, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  const auto other = ex.Scenario(StudyPeriod::k2019, 30);
  EXPECT_NE(*a, *other);
}

TEST_F(ExperimentsTest, FraCachedToDiskAndReloaded) {
  const ExperimentConfig config = TinyConfig(cache_dir_);
  FraResult first;
  {
    Experiments ex(config);
    auto result = ex.Fra(StudyPeriod::k2019, 30);
    ASSERT_TRUE(result.ok());
    first = *result;
    EXPECT_FALSE(first.selected.empty());
  }
  {
    // Fresh orchestrator, same cache dir: must reload identical output
    // without recomputation (history is not persisted, names/scores are).
    Experiments ex(config);
    auto reloaded = ex.Fra(StudyPeriod::k2019, 30);
    ASSERT_TRUE(reloaded.ok());
    EXPECT_EQ(reloaded->selected, first.selected);
    ASSERT_EQ(reloaded->selected_scores.size(), first.selected_scores.size());
    for (size_t i = 0; i < first.selected_scores.size(); ++i) {
      EXPECT_NEAR(reloaded->selected_scores[i], first.selected_scores[i],
                  1e-5);
    }
  }
}

TEST_F(ExperimentsTest, FullPipelineProducesConsistentArtifacts) {
  Experiments ex(TinyConfig(cache_dir_));
  const auto fvec = ex.FinalVector(StudyPeriod::k2019, 30);
  ASSERT_TRUE(fvec.ok());
  EXPECT_FALSE(fvec->features.empty());
  EXPECT_LE(fvec->features.size(), 150u);

  const auto scored = ex.ScoredVector(StudyPeriod::k2019, 30);
  ASSERT_TRUE(scored.ok());
  EXPECT_EQ(scored->features.size(), fvec->features.size());
  EXPECT_EQ(scored->features.size(), scored->importance.size());

  const auto contributions = ex.Contributions(StudyPeriod::k2019, 30);
  ASSERT_TRUE(contributions.ok());
  size_t selected_total = 0;
  for (const auto& c : *contributions) {
    EXPECT_LE(c.selected, c.candidates);
    EXPECT_GE(c.contribution_factor, 0.0);
    EXPECT_LE(c.contribution_factor, 1.0);
    selected_total += c.selected;
  }
  EXPECT_EQ(selected_total, fvec->features.size());
}

TEST_F(ExperimentsTest, ImprovementCachedAcrossInstances) {
  const ExperimentConfig config = TinyConfig(cache_dir_);
  ImprovementResult first;
  {
    Experiments ex(config);
    auto result =
        ex.Improvement(StudyPeriod::k2019, 30, ModelKind::kRandomForest);
    ASSERT_TRUE(result.ok());
    first = *result;
    EXPECT_FALSE(first.per_category.empty());
  }
  {
    Experiments ex(config);
    auto reloaded =
        ex.Improvement(StudyPeriod::k2019, 30, ModelKind::kRandomForest);
    ASSERT_TRUE(reloaded.ok());
    ASSERT_EQ(reloaded->per_category.size(), first.per_category.size());
    for (size_t i = 0; i < first.per_category.size(); ++i) {
      EXPECT_EQ(reloaded->per_category[i].category,
                first.per_category[i].category);
      EXPECT_NEAR(reloaded->per_category[i].improvement_pct,
                  first.per_category[i].improvement_pct, 1e-3);
    }
  }
}

TEST_F(ExperimentsTest, ExportModelWritesServableSnapshot) {
  Experiments ex(TinyConfig(cache_dir_));
  // Unknown model names fail before any pipeline work.
  EXPECT_FALSE(ex.ExportModel(StudyPeriod::k2019, 30, "nope").ok());

  const auto path = ex.ExportModel(StudyPeriod::k2019, 30, "rf");
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_TRUE(std::filesystem::exists(*path));
  EXPECT_EQ(std::filesystem::path(*path).parent_path().string(),
            ex.ModelDir());

  // Re-export short-circuits on the existing snapshot (same path back).
  const auto again = ex.ExportModel(StudyPeriod::k2019, 30, "rf");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *path);

  // A registry rooted at ModelDir() can discover and serve the export.
  serve::ModelRegistry registry(ex.ModelDir());
  const std::vector<serve::ModelKey> keys = registry.ListOnDisk();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].period, "2019");
  EXPECT_EQ(keys[0].window, 30);
  EXPECT_EQ(keys[0].model, "rf");
  auto servable = registry.Get(keys[0]);
  ASSERT_TRUE(servable.ok());
  EXPECT_TRUE((*servable)->flattened());

  // The exported model was fitted on the scenario's final feature vector.
  const auto fvec = ex.FinalVector(StudyPeriod::k2019, 30);
  ASSERT_TRUE(fvec.ok());
  EXPECT_EQ((*servable)->num_features(), fvec->features.size());
}

TEST_F(ExperimentsTest, PrecomputeAllPropagatesFirstPipelineError) {
  // Poison the model config so every scenario's FRA fails inside the
  // ParallelFor fan-out. The call must return the underlying error —
  // not hang, not crash, not swallow it into an OK.
  ExperimentConfig config = TinyConfig(cache_dir_);
  config.fra.rf.n_trees = 0;
  Experiments poisoned(config);
  const Status status =
      poisoned.PrecomputeAll({StudyPeriod::k2019}, {1, 7});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("n_trees"), std::string::npos)
      << status.ToString();

  // The failed run must not have cached anything that blinds a healthy
  // retry: the same cache dir with a valid config completes.
  Experiments healthy(TinyConfig(cache_dir_));
  EXPECT_TRUE(healthy.PrecomputeAll({StudyPeriod::k2019}, {1}).ok());
}

TEST_F(ExperimentsTest, GroupMergesScoredVectors) {
  Experiments ex(TinyConfig(cache_dir_));
  const auto group = ex.Group(StudyPeriod::k2019, {30});
  ASSERT_TRUE(group.ok());
  EXPECT_FALSE(group->features.empty());
  for (size_t i = 1; i < group->importance.size(); ++i) {
    EXPECT_GE(group->importance[i - 1], group->importance[i]);
  }
}

}  // namespace
}  // namespace fab::core
