#include "net/event_loop.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <vector>

namespace fab::net {
namespace {

// Both backends run the same behavioral suite; pipes stand in for
// sockets (readiness semantics are identical and no network is needed).
class EventLoopTest : public ::testing::TestWithParam<EventLoop::Backend> {
 protected:
  void SetUp() override {
    Result<std::unique_ptr<EventLoop>> loop = EventLoop::Create(GetParam());
    ASSERT_TRUE(loop.ok()) << loop.status().ToString();
    loop_ = std::move(*loop);
    ASSERT_EQ(::pipe(fds_), 0);
  }

  void TearDown() override {
    ::close(fds_[0]);
    ::close(fds_[1]);
  }

  std::unique_ptr<EventLoop> loop_;
  int fds_[2] = {-1, -1};  // [0]=read end, [1]=write end
};

TEST_P(EventLoopTest, TimesOutWithNoEvents) {
  ASSERT_TRUE(loop_->Add(fds_[0], /*want_read=*/true, false).ok());
  std::vector<IoEvent> events;
  ASSERT_TRUE(loop_->Wait(/*timeout_ms=*/10, &events).ok());
  EXPECT_TRUE(events.empty());
}

TEST_P(EventLoopTest, ReportsReadableAfterWrite) {
  ASSERT_TRUE(loop_->Add(fds_[0], true, false).ok());
  ASSERT_EQ(::write(fds_[1], "x", 1), 1);
  std::vector<IoEvent> events;
  ASSERT_TRUE(loop_->Wait(1000, &events).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, fds_[0]);
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);
}

TEST_P(EventLoopTest, ReportsWritableOnEmptyPipe) {
  ASSERT_TRUE(loop_->Add(fds_[1], false, /*want_write=*/true).ok());
  std::vector<IoEvent> events;
  ASSERT_TRUE(loop_->Wait(1000, &events).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, fds_[1]);
  EXPECT_TRUE(events[0].writable);
}

TEST_P(EventLoopTest, ModSwitchesInterest) {
  ASSERT_TRUE(loop_->Add(fds_[0], true, false).ok());
  ASSERT_EQ(::write(fds_[1], "x", 1), 1);
  // Interest off: the pending byte must not surface.
  ASSERT_TRUE(loop_->Mod(fds_[0], false, false).ok());
  std::vector<IoEvent> events;
  ASSERT_TRUE(loop_->Wait(10, &events).ok());
  EXPECT_TRUE(events.empty());
  // Interest back on: now it does.
  ASSERT_TRUE(loop_->Mod(fds_[0], true, false).ok());
  ASSERT_TRUE(loop_->Wait(1000, &events).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].readable);
}

TEST_P(EventLoopTest, DelStopsNotifications) {
  ASSERT_TRUE(loop_->Add(fds_[0], true, false).ok());
  EXPECT_EQ(loop_->watched_count(), 1u);
  ASSERT_TRUE(loop_->Del(fds_[0]).ok());
  EXPECT_EQ(loop_->watched_count(), 0u);
  ASSERT_EQ(::write(fds_[1], "x", 1), 1);
  std::vector<IoEvent> events;
  ASSERT_TRUE(loop_->Wait(10, &events).ok());
  EXPECT_TRUE(events.empty());
}

TEST_P(EventLoopTest, RegistrationErrors) {
  ASSERT_TRUE(loop_->Add(fds_[0], true, false).ok());
  EXPECT_EQ(loop_->Add(fds_[0], true, false).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(loop_->Mod(fds_[1], true, false).code(), StatusCode::kNotFound);
  EXPECT_EQ(loop_->Del(fds_[1]).code(), StatusCode::kNotFound);
}

TEST_P(EventLoopTest, ClosedPeerReportsReadableOrError) {
  ASSERT_TRUE(loop_->Add(fds_[0], true, false).ok());
  ::close(fds_[1]);
  fds_[1] = ::open("/dev/null", 0);  // keep TearDown's close harmless
  std::vector<IoEvent> events;
  ASSERT_TRUE(loop_->Wait(1000, &events).ok());
  ASSERT_EQ(events.size(), 1u);
  // EOF surfaces as readable (read returns 0) and/or hangup.
  EXPECT_TRUE(events[0].readable || events[0].error);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EventLoopTest,
    ::testing::Values(
#ifdef __linux__
        EventLoop::Backend::kEpoll,
#endif
        EventLoop::Backend::kPoll),
    [](const ::testing::TestParamInfo<EventLoop::Backend>& info) {
      return info.param == EventLoop::Backend::kEpoll ? "Epoll" : "Poll";
    });

TEST(EventLoopCreateTest, DefaultBackendCreates) {
  Result<std::unique_ptr<EventLoop>> loop = EventLoop::Create();
  ASSERT_TRUE(loop.ok());
  EXPECT_EQ((*loop)->backend(), EventLoop::DefaultBackend());
}

}  // namespace
}  // namespace fab::net
