// fab::obs metrics registry: counter/gauge semantics, log-bucket
// histogram percentiles against exact sorted-sample percentiles within
// the documented <5% relative error, registry identity, JSON export
// shape, max-bucket trace exemplars, the Prometheus text exposition,
// and exact accounting under concurrent ThreadPool load.
//
// A TSan twin (obs_metrics_test_tsan) recompiles this file with
// -fsanitize=thread to prove the lock-free Record/Read paths and the
// mutex-guarded registry are race-free.

#include "util/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/obs/trace_context.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace fab::obs {
namespace {

TEST(ObsMetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(ObsMetricsTest, GaugeSetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(3.0);
  gauge.Add(1.5);
  gauge.Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 4.0);
}

TEST(ObsMetricsTest, HistogramEmptyReportsZeros) {
  Histogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Sum(), 0.0);
  EXPECT_EQ(hist.Percentile(0.50), 0.0);
  EXPECT_EQ(hist.Min(), 0.0);
  EXPECT_EQ(hist.Max(), 0.0);
}

TEST(ObsMetricsTest, HistogramTracksExactCountSumMinMax) {
  Histogram hist;
  const double values[] = {0.5, 12.25, 3.0, 800.0, 3.0};
  double sum = 0.0;
  for (double v : values) {
    hist.Record(v);
    sum += v;
  }
  EXPECT_EQ(hist.Count(), 5u);
  EXPECT_DOUBLE_EQ(hist.Sum(), sum);
  EXPECT_DOUBLE_EQ(hist.Min(), 0.5);
  EXPECT_DOUBLE_EQ(hist.Max(), 800.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), sum / 5.0);
}

/// Exact nearest-rank percentile over a sorted copy — the reference the
/// histogram's documented <5% relative error bound is measured against.
double ExactPercentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto n = static_cast<double>(values.size());
  size_t rank = static_cast<size_t>(std::ceil(q * n));
  if (rank < 1) rank = 1;
  return values[rank - 1];
}

void ExpectPercentilesWithinDocumentedError(const std::vector<double>& samples,
                                            const char* label) {
  Histogram hist;
  for (double v : samples) hist.Record(v);
  for (double q : {0.50, 0.95, 0.99}) {
    const double exact = ExactPercentile(samples, q);
    const double approx = hist.Percentile(q);
    // Documented bound: sqrt(2^(1/8)) - 1 ~= 4.4% relative error.
    EXPECT_NEAR(approx, exact, 0.05 * exact)
        << label << " q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

TEST(ObsMetricsTest, HistogramPercentilesMatchExactWithinBound) {
  Rng rng(1234);
  std::vector<double> uniform, lognormal, bimodal;
  for (int i = 0; i < 20000; ++i) {
    uniform.push_back(1.0 + 999.0 * rng.Uniform());
    lognormal.push_back(std::exp(2.0 + 1.5 * rng.Normal()));
    bimodal.push_back(rng.Uniform() < 0.8 ? 10.0 + rng.Uniform()
                                          : 5000.0 + 100.0 * rng.Uniform());
  }
  ExpectPercentilesWithinDocumentedError(uniform, "uniform[1,1000]");
  ExpectPercentilesWithinDocumentedError(lognormal, "lognormal");
  ExpectPercentilesWithinDocumentedError(bimodal, "bimodal");
}

TEST(ObsMetricsTest, HistogramPercentilesAreMonotoneAndClampedToRange) {
  Histogram hist;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) hist.Record(std::exp(4.0 * rng.Uniform()));
  const double p50 = hist.Percentile(0.50);
  const double p95 = hist.Percentile(0.95);
  const double p99 = hist.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, hist.Max());
  EXPECT_GE(p50, hist.Min());
}

TEST(ObsMetricsTest, HistogramClampsOutOfRangeValues) {
  Histogram hist;
  hist.Record(0.0);      // below lowest tracked bucket
  hist.Record(1e-9);     // below lowest tracked bucket
  hist.Record(1e300);    // beyond highest bucket
  EXPECT_EQ(hist.Count(), 3u);
  EXPECT_DOUBLE_EQ(hist.Min(), 0.0);
  EXPECT_DOUBLE_EQ(hist.Max(), 1e300);
  // Percentiles stay inside the exact tracked range even though the
  // bucket midpoints cannot represent these extremes.
  EXPECT_GE(hist.Percentile(0.50), hist.Min());
  EXPECT_LE(hist.Percentile(0.99), hist.Max());
}

TEST(ObsMetricsTest, RegistryReturnsSameInstrumentForSameName) {
  Counter& a = GetCounter("test/registry_counter");
  Counter& b = GetCounter("test/registry_counter");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = GetGauge("test/registry_gauge");
  Gauge& g2 = GetGauge("test/registry_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = GetHistogram("test/registry_hist");
  Histogram& h2 = GetHistogram("test/registry_hist");
  EXPECT_EQ(&h1, &h2);
  // Distinct names are distinct instruments.
  EXPECT_NE(&a, &GetCounter("test/registry_counter2"));
}

TEST(ObsMetricsTest, ExportMetricsRendersRegisteredInstruments) {
  GetCounter("test/export_counter").Increment(3);
  GetGauge("test/export_gauge").Set(2.5);
  GetHistogram("test/export_hist").Record(10.0);
  const std::string json = ExportMetrics();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test/export_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test/export_gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test/export_hist\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(ObsMetricsTest, ConcurrentRecordingIsExactlyAccounted) {
  Counter& counter = GetCounter("test/concurrent_counter");
  Gauge& gauge = GetGauge("test/concurrent_gauge");
  Histogram& hist = GetHistogram("test/concurrent_hist");
  const uint64_t count_before = counter.Value();
  const uint64_t hist_before = hist.Count();

  constexpr size_t kItems = 4000;
  util::ThreadPool pool(8);
  pool.ParallelFor(0, kItems, [&](size_t i) {
    counter.Increment();
    gauge.Add(1.0);
    gauge.Add(-1.0);
    hist.Record(1.0 + static_cast<double>(i % 100));
  });

  EXPECT_EQ(counter.Value() - count_before, kItems);
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
  EXPECT_EQ(hist.Count() - hist_before, kItems);
  EXPECT_GE(hist.Max(), 100.0);
  // Registry lookups race-free under load too (TSan twin exercises this).
  pool.ParallelFor(0, 64, [](size_t) {
    GetCounter("test/concurrent_lookup").Increment();
  });
  EXPECT_EQ(GetCounter("test/concurrent_lookup").Value(), 64u);
}

TEST(ObsMetricsTest, MaxExemplarFollowsLeadingTracedSample) {
  Histogram hist;
  EXPECT_EQ(hist.MaxExemplarTraceId(), 0u);
  hist.Record(5.0, 0xabcu);  // first sample leads by definition
  EXPECT_EQ(hist.MaxExemplarTraceId(), 0xabcu);
  hist.Record(3.0, 0xdefu);  // not a new max: exemplar unchanged
  EXPECT_EQ(hist.MaxExemplarTraceId(), 0xabcu);
  hist.Record(10.0, 0x123u);  // new max with a trace: exemplar moves
  EXPECT_EQ(hist.MaxExemplarTraceId(), 0x123u);
  hist.Record(20.0, 0u);  // untraced sample leads: keep the last exemplar
  EXPECT_EQ(hist.Max(), 20.0);
  EXPECT_EQ(hist.MaxExemplarTraceId(), 0x123u);
}

TEST(ObsMetricsTest, RecordPicksUpAmbientTraceContext) {
  Histogram hist;
  {
    const ScopedTraceId scope(0x77u);
    hist.Record(1.0);  // single-arg overload reads CurrentTraceId()
  }
  EXPECT_EQ(hist.MaxExemplarTraceId(), 0x77u);
  hist.Record(2.0);  // context restored to 0: exemplar survives the max
  EXPECT_EQ(hist.MaxExemplarTraceId(), 0x77u);
}

TEST(ObsMetricsTest, ToJsonEmitsMaxTraceOnlyWhenExemplarExists) {
  Histogram hist;
  EXPECT_EQ(hist.ToJson().find("max_trace"), std::string::npos);
  hist.Record(4.0);  // untraced: still no exemplar field
  EXPECT_EQ(hist.ToJson().find("max_trace"), std::string::npos);
  hist.Record(8.0, 0xbeefu);
  const std::string json = hist.ToJson();
  EXPECT_NE(json.find("\"max_trace\":\"" + FormatTraceId(0xbeefu) + "\""),
            std::string::npos);
}

TEST(ObsMetricsTest, ConcurrentTracedRecordingKeepsExemplarValid) {
  Histogram& hist = GetHistogram("test/exemplar_concurrent_hist");
  constexpr size_t kItems = 2000;
  util::ThreadPool pool(8);
  pool.ParallelFor(0, kItems, [&](size_t i) {
    hist.Record(1.0 + static_cast<double>(i % 100), 0x1000u + (i % 100));
  });
  // The exemplar may lag the exact max by one racing sample, but it must
  // always be one of the ids actually recorded (never torn or invented).
  const uint64_t exemplar = hist.MaxExemplarTraceId();
  EXPECT_GE(exemplar, 0x1000u);
  EXPECT_LT(exemplar, 0x1000u + 100u);
  EXPECT_EQ(hist.Max(), 100.0);
}

TEST(ObsMetricsTest, ExportPrometheusShapesAndSanitizesNames) {
  GetCounter("promtest/req-count").Increment(7);
  GetGauge("promtest/depth").Set(2.5);
  Histogram& hist = GetHistogram("promtest/latency_us");
  const uint64_t before = hist.Count();
  hist.Record(1.0);
  hist.Record(2.0);
  const std::string text = ExportPrometheus();
  // '/' and '-' sanitize to '_' and counters gain the _total suffix.
  EXPECT_NE(text.find("# TYPE fab_promtest_req_count_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("fab_promtest_req_count_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fab_promtest_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("fab_promtest_depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fab_promtest_latency_us histogram\n"),
            std::string::npos);
  // Two samples in distinct buckets: cumulative le-buckets end at the
  // total, +Inf mirrors it, and _count mirrors +Inf.
  const std::string total = std::to_string(before + 2);
  EXPECT_NE(text.find("fab_promtest_latency_us_bucket{le=\"+Inf\"} " + total +
                      "\n"),
            std::string::npos);
  EXPECT_NE(text.find("fab_promtest_latency_us_count " + total + "\n"),
            std::string::npos);
  EXPECT_NE(text.find("fab_promtest_latency_us_sum "), std::string::npos);
}

TEST(ObsMetricsTest, ExportPrometheusBucketsAreCumulativeNonDecreasing) {
  Histogram& hist = GetHistogram("promtest/cumulative_hist");
  for (int i = 0; i < 50; ++i) {
    hist.Record(0.001 * (1 << (i % 10)));
  }
  const std::string text = ExportPrometheus();
  const std::string prefix = "fab_promtest_cumulative_hist_bucket{le=\"";
  uint64_t prev = 0;
  size_t pos = 0;
  int buckets_seen = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    const size_t space = text.find("} ", pos);
    ASSERT_NE(space, std::string::npos);
    const uint64_t n = std::strtoull(text.c_str() + space + 2, nullptr, 10);
    EXPECT_GE(n, prev);
    prev = n;
    ++buckets_seen;
    pos = space;
  }
  EXPECT_GE(buckets_seen, 2);
  EXPECT_EQ(prev, hist.Count());  // the +Inf bucket covers everything
}

}  // namespace
}  // namespace fab::obs
