#include "table/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fab::table {
namespace {

Column WithNulls(std::vector<double> values, std::vector<size_t> null_at) {
  Column c(std::move(values));
  for (size_t i : null_at) c.SetNull(i);
  return c;
}

TEST(InterpolateTest, FillsInteriorGapLinearly) {
  Column c = WithNulls({0, 0, 0, 30, 40}, {1, 2});
  c.Set(0, 0.0);
  Column out = InterpolateLinear(c);
  EXPECT_DOUBLE_EQ(out.value(1), 10.0);
  EXPECT_DOUBLE_EQ(out.value(2), 20.0);
  EXPECT_EQ(out.null_count(), 0u);
}

TEST(InterpolateTest, LeavesLeadingAndTrailingNulls) {
  Column c = WithNulls({0, 5, 0}, {0, 2});
  Column out = InterpolateLinear(c);
  EXPECT_TRUE(out.is_null(0));
  EXPECT_TRUE(out.is_null(2));
  EXPECT_DOUBLE_EQ(out.value(1), 5.0);
}

TEST(InterpolateTest, NoopOnFullyValid) {
  Column c(std::vector<double>{1, 2, 3});
  EXPECT_TRUE(InterpolateLinear(c).EqualsExactly(c));
}

TEST(InterpolateTest, AllNullStaysNull) {
  EXPECT_EQ(InterpolateLinear(Column(4)).null_count(), 4u);
}

TEST(ForwardFillTest, CarriesLastValid) {
  Column c = WithNulls({1, 0, 0, 4}, {1, 2});
  Column out = ForwardFill(c);
  EXPECT_DOUBLE_EQ(out.value(1), 1.0);
  EXPECT_DOUBLE_EQ(out.value(2), 1.0);
  EXPECT_DOUBLE_EQ(out.value(3), 4.0);
}

TEST(ForwardFillTest, LeadingNullsStay) {
  Column out = ForwardFill(WithNulls({0, 2}, {0}));
  EXPECT_TRUE(out.is_null(0));
}

TEST(BackwardFillTest, CarriesNextValid) {
  Column c = WithNulls({0, 0, 3}, {0, 1});
  Column out = BackwardFill(c);
  EXPECT_DOUBLE_EQ(out.value(0), 3.0);
  EXPECT_DOUBLE_EQ(out.value(1), 3.0);
}

TEST(ShiftTest, PositiveShiftMovesValuesLater) {
  Column c(std::vector<double>{1, 2, 3, 4});
  Column out = Shift(c, 2);
  EXPECT_TRUE(out.is_null(0));
  EXPECT_TRUE(out.is_null(1));
  EXPECT_DOUBLE_EQ(out.value(2), 1.0);
  EXPECT_DOUBLE_EQ(out.value(3), 2.0);
}

TEST(ShiftTest, NegativeShiftBringsFutureBack) {
  Column c(std::vector<double>{1, 2, 3, 4});
  Column out = Shift(c, -1);
  EXPECT_DOUBLE_EQ(out.value(0), 2.0);
  EXPECT_DOUBLE_EQ(out.value(2), 4.0);
  EXPECT_TRUE(out.is_null(3));
}

TEST(PctChangeTest, ComputesRelativeChange) {
  Column c(std::vector<double>{100, 110, 99});
  Column out = PctChange(c, 1);
  EXPECT_TRUE(out.is_null(0));
  EXPECT_NEAR(out.value(1), 0.10, 1e-12);
  EXPECT_NEAR(out.value(2), -0.1, 1e-12);
}

TEST(PctChangeTest, ZeroBaseIsNull) {
  Column c(std::vector<double>{0, 5});
  EXPECT_TRUE(PctChange(c, 1).is_null(1));
}

TEST(LogReturnTest, MatchesLogRatio) {
  Column c(std::vector<double>{100, 121});
  Column out = LogReturn(c, 1);
  EXPECT_NEAR(out.value(1), std::log(1.21), 1e-12);
}

TEST(LogReturnTest, NonPositiveIsNull) {
  Column c(std::vector<double>{-1, 5});
  EXPECT_TRUE(LogReturn(c, 1).is_null(1));
}

Table MakeCleanableTable() {
  auto t = Table::Create(DailyRange(Date(2020, 1, 1), Date(2020, 1, 10)));
  // Good column with one interior gap.
  Column good(std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  good.SetNull(4);
  (void)t->AddColumn("good", std::move(good));
  // Sparse column: 60% nulls.
  Column sparse(10);
  sparse.Set(0, 1.0);
  sparse.Set(1, 2.0);
  sparse.Set(2, 3.0);
  sparse.Set(3, 4.0);
  (void)t->AddColumn("sparse", std::move(sparse));
  // Flat column: constant throughout.
  (void)t->AddColumn("flat", std::vector<double>(10, 7.0));
  // Duplicate of "good".
  Column dup(std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  dup.SetNull(4);
  (void)t->AddColumn("dup_of_good", std::move(dup));
  return std::move(t).value();
}

TEST(CleanTableTest, DropsSparseFlatAndDuplicate) {
  Table t = MakeCleanableTable();
  CleaningOptions options;
  options.max_null_fraction = 0.3;
  options.max_flat_run = 5;
  CleaningReport report = CleanTable(&t, options);
  EXPECT_EQ(report.dropped_sparse, std::vector<std::string>{"sparse"});
  EXPECT_EQ(report.dropped_flat, std::vector<std::string>{"flat"});
  EXPECT_EQ(report.dropped_duplicate, std::vector<std::string>{"dup_of_good"});
  EXPECT_EQ(t.column_names(), std::vector<std::string>{"good"});
  // Interior gap interpolated.
  EXPECT_EQ(report.interpolated_cells, 1u);
  EXPECT_EQ(t.TotalNullCount(), 0u);
}

TEST(CleanTableTest, RespectsDisabledInterpolation) {
  Table t = MakeCleanableTable();
  CleaningOptions options;
  options.max_null_fraction = 0.3;
  options.max_flat_run = 5;
  options.interpolate = false;
  CleanTable(&t, options);
  EXPECT_EQ((*t.GetColumn("good"))->null_count(), 1u);
}

TEST(CleanTableTest, KeepsDuplicatesWhenDisabled) {
  Table t = MakeCleanableTable();
  CleaningOptions options;
  options.max_null_fraction = 0.3;
  options.max_flat_run = 5;
  options.drop_duplicates = false;
  CleanTable(&t, options);
  EXPECT_TRUE(t.HasColumn("dup_of_good"));
}

TEST(ColumnsStartedByTest, FiltersLateStarters) {
  auto t = Table::Create(DailyRange(Date(2020, 1, 1), Date(2020, 1, 10)));
  (void)t->AddColumn("early", std::vector<double>(10, 1.0));
  Column late(10);
  for (size_t i = 6; i < 10; ++i) late.Set(i, 1.0);
  (void)t->AddColumn("late", std::move(late));
  const auto started = ColumnsStartedBy(*t, Date(2020, 1, 3));
  EXPECT_EQ(started, std::vector<std::string>{"early"});
  const auto all = ColumnsStartedBy(*t, Date(2020, 1, 8));
  EXPECT_EQ(all.size(), 2u);
}

}  // namespace
}  // namespace fab::table
