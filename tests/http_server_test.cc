#include "net/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/forecast_service.h"
#include "net/http_client.h"
#include "net/json.h"
#include "net/shard_router.h"
#include "serve/registry.h"

namespace fab::net {
namespace {

namespace fs = std::filesystem;

/// Fixed-delay, fixed-value regressor (unknown to Servable::Wrap's
/// feature-count probing, so any row width is accepted — handy here).
class SlowRegressor : public ml::Regressor {
 public:
  explicit SlowRegressor(int delay_ms, double value)
      : delay_ms_(delay_ms), value_(value) {}

  Status Fit(const ml::ColMatrix&, const std::vector<double>&) override {
    return Status::OK();
  }
  double PredictOne(const ml::ColMatrix&, size_t) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return value_;
  }
  std::vector<double> Predict(const ml::ColMatrix& x) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return std::vector<double>(x.rows(), value_);
  }
  Status SetParam(const std::string&, double) override { return Status::OK(); }
  std::unique_ptr<ml::Regressor> CloneUnfitted() const override {
    return std::make_unique<SlowRegressor>(delay_ms_, value_);
  }
  std::vector<double> FeatureImportances() const override { return {}; }
  std::string name() const override { return "slow"; }

 private:
  int delay_ms_;
  double value_;
};

// "rf" keys land on shard 0 under 2 shards, "xgb" keys on shard 1.
const serve::ModelKey kSlowKey{"2017", 7, "rf"};
const serve::ModelKey kFastKey{"2019", 21, "xgb"};

/// Full stack on an ephemeral port: registry → router → service →
/// HttpServer, talked to through HttpClient over a real socket.
class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("fab_http_server_" + std::string(::testing::UnitTest::
                                                   GetInstance()
                                                       ->current_test_info()
                                                       ->name())))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
    registry_ = std::make_unique<serve::ModelRegistry>(root_);
    ASSERT_TRUE(registry_
                    ->Put(kSlowKey,
                          std::make_unique<SlowRegressor>(100, 7.0))
                    .ok());
    ASSERT_TRUE(registry_
                    ->Put(kFastKey,
                          std::make_unique<SlowRegressor>(0, 3.5))
                    .ok());
  }

  void StartStack(EventLoop::Backend backend = EventLoop::DefaultBackend(),
                  size_t max_shard_queue = 256) {
    ShardedRouterOptions router_options;
    router_options.num_shards = 2;
    router_options.threads_per_shard = 1;
    router_options.max_batch = 1;
    router_options.max_shard_queue = max_shard_queue;
    router_options.slo_queue_wait_us = 0.0;  // deterministic: full-only
    Result<std::unique_ptr<ShardedRouter>> router =
        ShardedRouter::Create(registry_.get(), router_options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    router_ = std::move(*router);
    service_ = std::make_unique<ForecastService>(router_.get());

    HttpServerOptions server_options;
    server_options.port = 0;  // ephemeral
    server_options.backend = backend;
    server_ = std::make_unique<HttpServer>(server_options);
    service_->RegisterRoutes(server_.get());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
    if (router_ != nullptr) router_->Shutdown();
    fs::remove_all(root_);
  }

  static std::string PredictBody(const serve::ModelKey& key,
                                 const std::string& rows) {
    return "{\"period\":\"" + key.period +
           "\",\"window\":" + std::to_string(key.window) +
           ",\"model\":\"" + key.model + "\",\"rows\":" + rows + "}";
  }

  std::string root_;
  std::unique_ptr<serve::ModelRegistry> registry_;
  std::unique_ptr<ShardedRouter> router_;
  std::unique_ptr<ForecastService> service_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, HealthzOverRealSocket) {
  StartStack();
  HttpClient client("127.0.0.1", server_->port());
  Result<HttpResponse> response = client.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  Result<JsonValue> body = ParseJson(response->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(*body->GetString("status"), "ok");
}

TEST_F(HttpServerTest, PredictReturnsForecastsAndShard) {
  StartStack();
  HttpClient client("127.0.0.1", server_->port());
  Result<HttpResponse> response = client.Post(
      "/predict", PredictBody(kFastKey, "[[1.0,2.0],[3.0,4.0],[5,6]]"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  Result<JsonValue> body = ParseJson(response->body);
  ASSERT_TRUE(body.ok()) << response->body;
  const JsonValue* forecasts = body->Find("forecasts");
  ASSERT_NE(forecasts, nullptr);
  ASSERT_EQ(forecasts->array().size(), 3u);
  for (const JsonValue& forecast : forecasts->array()) {
    EXPECT_DOUBLE_EQ(forecast.number(), 3.5);
  }
  EXPECT_DOUBLE_EQ(*body->GetNumber("shard"),
                   static_cast<double>(router_->ShardFor(kFastKey)));
}

TEST_F(HttpServerTest, ErrorMapping) {
  StartStack();
  HttpClient client("127.0.0.1", server_->port());

  // Unrouted path.
  EXPECT_EQ((*client.Get("/nope")).status_code, 404);
  // Routed path, wrong method.
  EXPECT_EQ((*client.Get("/predict")).status_code, 405);
  // Malformed JSON body.
  EXPECT_EQ((*client.Post("/predict", "{not json")).status_code, 400);
  // Missing field.
  EXPECT_EQ((*client.Post("/predict", "{\"period\":\"2017\"}")).status_code,
            400);
  // Bad rows payload.
  EXPECT_EQ(
      (*client.Post("/predict",
                    PredictBody(kFastKey, "[[1.0],\"oops\"]")))
          .status_code,
      400);
  // Unknown scenario key -> registry NotFound -> 404.
  serve::ModelKey unknown{"2031", 7, "rf"};
  Result<HttpResponse> missing =
      client.Post("/predict", PredictBody(unknown, "[[1.0]]"));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);
  Result<JsonValue> body = ParseJson(missing->body);
  ASSERT_TRUE(body.ok());
  EXPECT_TRUE(body->Find("error") != nullptr);
}

TEST_F(HttpServerTest, KeepAliveServesManySequentialRequests) {
  StartStack();
  HttpClient client("127.0.0.1", server_->port());
  for (int i = 0; i < 20; ++i) {
    Result<HttpResponse> response =
        client.Post("/predict", PredictBody(kFastKey, "[[1.0]]"));
    ASSERT_TRUE(response.ok()) << "request " << i << ": "
                               << response.status().ToString();
    ASSERT_EQ(response->status_code, 200);
  }
}

TEST_F(HttpServerTest, StatuszExportsRouterAndMetrics) {
  StartStack();
  HttpClient client("127.0.0.1", server_->port());
  ASSERT_EQ((*client.Post("/predict", PredictBody(kFastKey, "[[1.0]]")))
                .status_code,
            200);
  Result<HttpResponse> response = client.Get("/statusz");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  Result<JsonValue> body = ParseJson(response->body);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  const JsonValue* router_statsz = body->Find("router");
  ASSERT_NE(router_statsz, nullptr);
  EXPECT_DOUBLE_EQ(*router_statsz->GetNumber("num_shards"), 2.0);
  EXPECT_NE(body->Find("metrics"), nullptr);
}

TEST_F(HttpServerTest, PollBackendServesIdentically) {
  StartStack(EventLoop::Backend::kPoll);
  HttpClient client("127.0.0.1", server_->port());
  EXPECT_EQ((*client.Get("/healthz")).status_code, 200);
  Result<HttpResponse> response =
      client.Post("/predict", PredictBody(kFastKey, "[[9.0]]"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
}

TEST_F(HttpServerTest, ConcurrentClientsAcrossConnections) {
  StartStack();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &ok_count] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < kPerThread; ++i) {
        Result<HttpResponse> response =
            client.Post("/predict", PredictBody(kFastKey, "[[1.0]]"));
        if (response.ok() && response->status_code == 200) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kThreads * kPerThread);
}

TEST_F(HttpServerTest, SaturatedShardReturns429WithRetryAfter) {
  // 1 worker x 100ms per row x 1-slot queue on the rf shard: concurrent
  // clients must overrun it. The xgb shard shares nothing with it and
  // keeps answering 200 throughout.
  StartStack(EventLoop::DefaultBackend(), /*max_shard_queue=*/1);

  std::atomic<int> ok_200{0};
  std::atomic<int> shed_429{0};
  std::atomic<int> other{0};
  std::atomic<bool> retry_after_present{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &ok_200, &shed_429, &other,
                          &retry_after_present] {
      HttpClient client("127.0.0.1", server_->port());
      for (int i = 0; i < 5; ++i) {
        Result<HttpResponse> response =
            client.Post("/predict", PredictBody(kSlowKey, "[[1.0]]"));
        if (!response.ok()) {
          other.fetch_add(1);
          continue;
        }
        if (response->status_code == 200) {
          ok_200.fetch_add(1);
        } else if (response->status_code == 429) {
          shed_429.fetch_add(1);
          const std::string* retry_after =
              response->Header("Retry-After");
          if (retry_after == nullptr || std::stoi(*retry_after) < 1) {
            retry_after_present.store(false);
          }
        } else {
          other.fetch_add(1);
        }
      }
    });
  }

  // The healthy shard keeps serving while the rf shard sheds.
  HttpClient fast_client("127.0.0.1", server_->port());
  int fast_ok = 0;
  for (int i = 0; i < 10; ++i) {
    Result<HttpResponse> response =
        fast_client.Post("/predict", PredictBody(kFastKey, "[[1.0]]"));
    if (response.ok() && response->status_code == 200) ++fast_ok;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_GE(ok_200.load(), 1);
  EXPECT_GE(shed_429.load(), 1)
      << "20 concurrent 100ms requests into a 1-slot queue must shed";
  EXPECT_EQ(other.load(), 0);
  EXPECT_TRUE(retry_after_present.load())
      << "every 429 must carry Retry-After >= 1";
  EXPECT_EQ(fast_ok, 10) << "the unsaturated shard must keep serving";
}

/// Bare server with hand-registered routes — no registry/router stack —
/// for exercising HttpServer's own lifecycle and framing invariants.
TEST(HttpServerLifecycleTest, SecondSendOnSameExchangeIsDropped) {
  HttpServer server{HttpServerOptions{}};
  server.Handle("GET", "/double",
                [](const HttpRequest&, Responder responder) {
                  responder.Send(HttpResponse::Json(200, "{\"n\":1}"));
                  // The doc promises later calls are dropped; were this
                  // appended, the next keep-alive request on the same
                  // connection would read it as its response.
                  responder.Send(HttpResponse::Json(500, "{\"n\":2}"));
                });
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 3; ++i) {
    Result<HttpResponse> response = client.Get("/double");
    ASSERT_TRUE(response.ok())
        << "request " << i << ": " << response.status().ToString();
    EXPECT_EQ(response->status_code, 200) << "request " << i;
    EXPECT_EQ(response->body, "{\"n\":1}") << "request " << i;
  }
  server.Shutdown();
}

TEST(HttpServerLifecycleTest, FailedStartCleansUpAndAllowsRetry) {
  HttpServer holder{HttpServerOptions{}};
  ASSERT_TRUE(holder.Start().ok());

  HttpServerOptions colliding;
  colliding.port = holder.port();
  HttpServer server(colliding);
  server.Handle("GET", "/healthz",
                [](const HttpRequest&, Responder responder) {
                  responder.Send(HttpResponse::Json(200, "{}"));
                });
  // Each failed bind must release every descriptor it created (pipe,
  // listener, spare) — repeated failures would otherwise exhaust the
  // fd table — and must not poison a later successful Start.
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(server.Start().ok());
  }
  holder.Shutdown();
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  Result<HttpResponse> response = client.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  server.Shutdown();

  HttpServer bad_address{[] {
    HttpServerOptions options;
    options.bind_address = "not-an-ip";
    return options;
  }()};
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(bad_address.Start().ok());
  }
}

TEST(HttpServerLifecycleTest, ClientResetDuringResponseFlushIsSurvived) {
  HttpServer server{HttpServerOptions{}};
  // Big enough to outsize socket buffers (several flush rounds), slow
  // enough that an impatient client has hung up before the first byte.
  const std::string pad(1 << 20, 'x');
  server.Handle("GET", "/slow_big",
                [&pad](const HttpRequest&, Responder responder) {
                  std::this_thread::sleep_for(
                      std::chrono::milliseconds(60));
                  responder.Send(
                      HttpResponse::Json(200, "{\"pad\":\"" + pad + "\"}"));
                });
  ASSERT_TRUE(server.Start().ok());

  // Each impatient client times out mid-exchange and closes its socket
  // (HttpClient disconnects on a recv timeout); the server then flushes
  // 1MB into a reset connection. Without MSG_NOSIGNAL/SIG_IGN that
  // raises SIGPIPE and kills this whole process.
  for (int i = 0; i < 4; ++i) {
    HttpClient impatient("127.0.0.1", server.port(), /*timeout_ms=*/10);
    EXPECT_FALSE(impatient.Get("/slow_big").ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Server (and process) still alive and serving.
  HttpClient patient("127.0.0.1", server.port());
  Result<HttpResponse> response = patient.Get("/slow_big");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  server.Shutdown();
}

}  // namespace
}  // namespace fab::net
