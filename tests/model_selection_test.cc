#include "ml/model_selection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ml/forest.h"
#include "util/random.h"

namespace fab::ml {
namespace {

TEST(KFoldTest, RejectsBadArguments) {
  EXPECT_FALSE(KFold(10, 1, false, 0).ok());
  EXPECT_FALSE(KFold(3, 5, false, 0).ok());
}

TEST(KFoldTest, ContiguousWhenUnshuffled) {
  const auto folds = *KFold(6, 3, false, 0);
  EXPECT_EQ(folds[0].validation, (std::vector<int>{0, 1}));
  EXPECT_EQ(folds[1].validation, (std::vector<int>{2, 3}));
  EXPECT_EQ(folds[2].validation, (std::vector<int>{4, 5}));
  EXPECT_EQ(folds[0].train, (std::vector<int>{2, 3, 4, 5}));
}

TEST(KFoldTest, ShuffledIsDeterministicInSeed) {
  const auto a = *KFold(20, 4, true, 7);
  const auto b = *KFold(20, 4, true, 7);
  const auto c = *KFold(20, 4, true, 8);
  EXPECT_EQ(a[0].validation, b[0].validation);
  EXPECT_NE(a[0].validation, c[0].validation);
}

class KFoldSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(KFoldSweep, PartitionProperties) {
  const auto [n, k] = GetParam();
  const auto folds = *KFold(static_cast<size_t>(n), k, true, 13);
  ASSERT_EQ(folds.size(), static_cast<size_t>(k));
  std::set<int> all_validation;
  for (const Fold& fold : folds) {
    // Every row appears exactly once across validation sets.
    for (int r : fold.validation) {
      EXPECT_TRUE(all_validation.insert(r).second);
    }
    // Train and validation partition the rows.
    EXPECT_EQ(fold.train.size() + fold.validation.size(),
              static_cast<size_t>(n));
    std::set<int> train_set(fold.train.begin(), fold.train.end());
    for (int r : fold.validation) EXPECT_EQ(train_set.count(r), 0u);
    // Fold sizes differ by at most 1.
    EXPECT_GE(fold.validation.size(), static_cast<size_t>(n / k));
    EXPECT_LE(fold.validation.size(), static_cast<size_t>(n / k + 1));
  }
  EXPECT_EQ(all_validation.size(), static_cast<size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Shapes, KFoldSweep,
                         ::testing::Values(std::make_pair(10, 2),
                                           std::make_pair(10, 3),
                                           std::make_pair(100, 5),
                                           std::make_pair(101, 5),
                                           std::make_pair(7, 7)));

TEST(ExpandGridTest, CartesianProduct) {
  const auto grid = ExpandGrid({{"a", {1, 2}}, {"b", {10, 20, 30}}});
  EXPECT_EQ(grid.size(), 6u);
  std::set<std::pair<double, double>> combos;
  for (const auto& p : grid) combos.insert({p.at("a"), p.at("b")});
  EXPECT_EQ(combos.size(), 6u);
}

TEST(ExpandGridTest, EmptyGridIsSinglePoint) {
  const auto grid = ExpandGrid({});
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_TRUE(grid[0].empty());
}

Dataset MakeDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> c0(n), c1(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    c0[i] = rng.Normal();
    c1[i] = rng.Normal();
    y[i] = 2.0 * c0[i] + 0.5 * rng.Normal();
  }
  Dataset d;
  d.x = *ColMatrix::FromColumns({c0, c1});
  d.y = std::move(y);
  d.feature_names = {"c0", "c1"};
  return d;
}

TEST(CrossValMseTest, ReasonableForGoodModel) {
  const Dataset d = MakeDataset(400, 3);
  ForestParams params;
  params.n_trees = 20;
  params.max_depth = 6;
  RandomForestRegressor rf(params);
  const auto folds = *KFold(d.num_rows(), 5, true, 5);
  const auto mse = CrossValMse(rf, d, folds);
  ASSERT_TRUE(mse.ok());
  // Target variance is ~4.25; a fitted model must do much better.
  EXPECT_LT(*mse, 2.0);
  EXPECT_GT(*mse, 0.0);
}

TEST(CrossValMseTest, RejectsEmptyFolds) {
  const Dataset d = MakeDataset(50, 5);
  RandomForestRegressor rf;
  EXPECT_FALSE(CrossValMse(rf, d, {}).ok());
}

TEST(GridSearchTest, FindsBetterOfTwoConfigs) {
  const Dataset d = MakeDataset(400, 7);
  ForestParams params;
  params.n_trees = 15;
  RandomForestRegressor prototype(params);
  // Depth 1 underfits badly vs depth 7.
  const auto grid = ExpandGrid({{"max_depth", {1, 7}}});
  const auto result = GridSearchCV(prototype, d, grid, 4, 11);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->all_mse.size(), 2u);
  EXPECT_DOUBLE_EQ(result->best_params.at("max_depth"), 7.0);
  EXPECT_LE(result->best_mse,
            *std::min_element(result->all_mse.begin(), result->all_mse.end()) +
                1e-12);
}

TEST(GridSearchTest, RejectsEmptyGrid) {
  const Dataset d = MakeDataset(50, 9);
  RandomForestRegressor rf;
  EXPECT_FALSE(GridSearchCV(rf, d, {}, 3, 0).ok());
}

TEST(GridSearchTest, PropagatesUnknownParam) {
  const Dataset d = MakeDataset(50, 9);
  RandomForestRegressor rf;
  const std::vector<ParamPoint> grid{{{"not_a_param", 1.0}}};
  EXPECT_FALSE(GridSearchCV(rf, d, grid, 3, 0).ok());
}

}  // namespace
}  // namespace fab::ml
