// Tests for the fab::obs flight recorder (flight.h), the request trace
// context (trace_context.h), and the /tracez span-tree builder
// (net/debugz.h): ring wrap-around under concurrent pool load, the
// crash-dump path (fork + abort + parse the dump), trace-id minting /
// formatting / propagation through ThreadPool, and containment nesting.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/debugz.h"
#include "util/obs/clock.h"
#include "util/obs/flight.h"
#include "util/obs/trace.h"
#include "util/obs/trace_context.h"
#include "util/thread_pool.h"

namespace fab {
namespace {

// --- Trace context. ---------------------------------------------------------

TEST(TraceContextTest, DefaultIsZero) { EXPECT_EQ(obs::CurrentTraceId(), 0u); }

TEST(TraceContextTest, ScopedInstallAndRestore) {
  {
    obs::ScopedTraceId outer(0x1234);
    EXPECT_EQ(obs::CurrentTraceId(), 0x1234u);
    {
      obs::ScopedTraceId inner(0xabcd);
      EXPECT_EQ(obs::CurrentTraceId(), 0xabcdu);
    }
    EXPECT_EQ(obs::CurrentTraceId(), 0x1234u);
  }
  EXPECT_EQ(obs::CurrentTraceId(), 0u);
}

TEST(TraceContextTest, InstallingZeroKeepsCurrentContext) {
  obs::ScopedTraceId outer(0x77);
  {
    obs::ScopedTraceId noop(0);
    EXPECT_EQ(obs::CurrentTraceId(), 0x77u);
  }
  EXPECT_EQ(obs::CurrentTraceId(), 0x77u);
}

TEST(TraceContextTest, MintedIdsAreNonZeroAndDistinct) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = obs::MintTraceId();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(TraceContextTest, FormatParseRoundTrip) {
  const uint64_t id = 0x0123456789abcdefull;
  const std::string hex = obs::FormatTraceId(id);
  EXPECT_EQ(hex, "0123456789abcdef");
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(obs::ParseTraceId(hex), id);
  EXPECT_EQ(obs::ParseTraceId("ABCDEF"), 0xabcdefu);  // case-insensitive
  EXPECT_EQ(obs::ParseTraceId("7"), 7u);              // short forms accepted
}

TEST(TraceContextTest, ParseRejectsMalformed) {
  EXPECT_EQ(obs::ParseTraceId(""), 0u);
  EXPECT_EQ(obs::ParseTraceId("xyz"), 0u);
  EXPECT_EQ(obs::ParseTraceId("123g"), 0u);
  EXPECT_EQ(obs::ParseTraceId("0123456789abcdef0"), 0u);  // 17 digits
  EXPECT_EQ(obs::ParseTraceId(" 12"), 0u);
}

TEST(TraceContextTest, ThreadPoolPropagatesContextIntoTasks) {
  util::ThreadPool pool(2);
  const uint64_t id = obs::MintTraceId();
  uint64_t seen = 0;
  {
    obs::ScopedTraceId scope(id);
    seen = pool.Submit([] { return obs::CurrentTraceId(); }).get();
  }
  EXPECT_EQ(seen, id);
  // Without a context installed the task runs uncontexted.
  EXPECT_EQ(pool.Submit([] { return obs::CurrentTraceId(); }).get(), 0u);
}

// --- Flight recorder ring. --------------------------------------------------

#if !defined(FAB_OBS_DISABLED)

obs::FlightSpan MakeSpan(const char* name, uint64_t trace_id) {
  const auto start = obs::Clock::Now();
  obs::FlightRecordSpan(name, trace_id, start, start);
  obs::FlightSpan span;
  span.name = name;
  span.trace_id = trace_id;
  return span;
}

size_t CountByName(const std::vector<obs::FlightSpan>& spans,
                   const char* name) {
  size_t n = 0;
  for (const obs::FlightSpan& span : spans) {
    if (span.name != nullptr && std::string(span.name) == name) ++n;
  }
  return n;
}

TEST(FlightRecorderTest, RecordedSpanAppearsInSnapshot) {
  ASSERT_TRUE(obs::FlightEnabled());
  MakeSpan("flight/appears", 0xbeef);
  const std::vector<obs::FlightSpan> spans = obs::FlightSnapshot();
  EXPECT_GE(CountByName(spans, "flight/appears"), 1u);
  for (const obs::FlightSpan& span : spans) {
    if (span.name != nullptr && std::string(span.name) == "flight/appears") {
      EXPECT_EQ(span.trace_id, 0xbeefu);
      EXPECT_GE(span.dur_ns, 0);
    }
  }
}

TEST(FlightRecorderTest, WrapAroundKeepsAtMostCapacitySpans) {
  const size_t capacity = obs::FlightCapacity();
  ASSERT_GT(capacity, 0u);
  // Overfill the ring by half a lap; old spans must be overwritten, the
  // snapshot bounded by capacity, and every surviving slot valid.
  for (size_t i = 0; i < capacity + capacity / 2; ++i) {
    MakeSpan("flight/wrap", i + 1);
  }
  const std::vector<obs::FlightSpan> spans = obs::FlightSnapshot();
  EXPECT_LE(spans.size(), capacity);
  const size_t wraps = CountByName(spans, "flight/wrap");
  // The ring now holds only flight/wrap spans (we wrote > capacity of
  // them); a handful may be skipped if a reader races a writer, but
  // nothing here writes concurrently, so all slots are valid.
  EXPECT_EQ(wraps, spans.size());
  for (const obs::FlightSpan& span : spans) {
    ASSERT_NE(span.name, nullptr);
    EXPECT_EQ(std::string(span.name), "flight/wrap");
    EXPECT_GT(span.trace_id, 0u);
  }
}

TEST(FlightRecorderTest, ConcurrentPoolLoadYieldsOnlyValidSlots) {
  const size_t capacity = obs::FlightCapacity();
  ASSERT_GT(capacity, 0u);
  util::ThreadPool pool(4);
  std::atomic<bool> stop{false};
  // Four writers lap the ring continuously while the main thread
  // snapshots: every span a snapshot returns must be fully valid (the
  // seqlock skips torn slots rather than returning garbage).
  std::vector<std::future<void>> writers;
  for (int w = 0; w < 4; ++w) {
    writers.push_back(pool.Submit([&stop] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        MakeSpan("flight/concurrent", ++i);
      }
    }));
  }
  for (int round = 0; round < 50; ++round) {
    const std::vector<obs::FlightSpan> spans = obs::FlightSnapshot();
    EXPECT_LE(spans.size(), capacity);
    for (const obs::FlightSpan& span : spans) {
      ASSERT_NE(span.name, nullptr);
      const std::string name(span.name);
      EXPECT_TRUE(name == "flight/concurrent" || name == "flight/wrap" ||
                  name == "flight/appears" || name == "net/send" ||
                  name.rfind("serve/", 0) == 0 || name.rfind("net/", 0) == 0)
          << name;
    }
  }
  stop.store(true);
  for (auto& writer : writers) writer.get();
}

TEST(FlightRecorderTest, SetEnabledGatesRecording) {
  obs::FlightSetEnabled(false);
  EXPECT_FALSE(obs::FlightEnabled());
  MakeSpan("flight/disabled", 0xdead);
  obs::FlightSetEnabled(true);
  ASSERT_TRUE(obs::FlightEnabled());
  // FlightRecordSpan itself is the raw ring append (TraceSpan checks
  // FlightEnabled before calling); verify the gate via TraceSpan.
  {
    obs::FlightSetEnabled(false);
    FAB_TRACE_SCOPE("flight/gated");
  }
  obs::FlightSetEnabled(true);
  EXPECT_EQ(CountByName(obs::FlightSnapshot(), "flight/gated"), 0u);
}

TEST(FlightRecorderTest, TraceScopeRecordsIntoRingWithContext) {
  const uint64_t id = obs::MintTraceId();
  {
    obs::ScopedTraceId scope(id);
    FAB_TRACE_SCOPE("flight/scoped");
  }
  const std::vector<obs::FlightSpan> spans = obs::FlightSnapshot();
  bool found = false;
  for (const obs::FlightSpan& span : spans) {
    if (span.name != nullptr && std::string(span.name) == "flight/scoped" &&
        span.trace_id == id) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- Crash dump. ------------------------------------------------------------

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The dump must be strict JSON: gate it through python3 -m json.tool,
/// the same validator the CI trace-smoke job uses.
bool ParsesAsJson(const std::string& path) {
  const std::string cmd =
      "python3 -m json.tool " + path + " > /dev/null 2>&1";
  return std::system(cmd.c_str()) == 0;  // fablint:allow(safety-catch-all)
}

TEST(FlightDumpTest, ExplicitDumpIsParseableChromeTrace) {
  const std::string path = ::testing::TempDir() + "flight_explicit.json";
  const uint64_t id = 0x00000000c0ffee00ull;
  MakeSpan("flight/dumped", id);
  ASSERT_TRUE(obs::FlightDump(path).ok());
  const std::string text = ReadFile(path);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("flight/dumped"), std::string::npos);
  EXPECT_NE(text.find(obs::FormatTraceId(id)), std::string::npos);
  EXPECT_TRUE(ParsesAsJson(path)) << text.substr(0, 400);
}

TEST(FlightDumpTest, AbortLeavesValidDumpBehind) {
  const std::string path = ::testing::TempDir() + "flight_abort.json";
  std::remove(path.c_str());
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the crash dump, record a recognizable request-shaped
    // span set, then die the way a real bug would. The SIGABRT handler
    // must write the ring before the default action kills us.
    if (!obs::FlightConfigureDump(path).ok()) _exit(97);
    const uint64_t id = obs::MintTraceId();
    {
      obs::ScopedTraceId scope(id);
      FAB_TRACE_SCOPE("flight/crash-outer");
      { FAB_TRACE_SCOPE("flight/crash-inner"); }
    }
    std::abort();
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited " << status;
  EXPECT_EQ(WTERMSIG(status), SIGABRT);
  const std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty()) << "no dump written at " << path;
  EXPECT_NE(text.find("flight/crash-outer"), std::string::npos);
  EXPECT_NE(text.find("flight/crash-inner"), std::string::npos);
  EXPECT_TRUE(ParsesAsJson(path)) << text.substr(0, 400);
}

#else  // FAB_OBS_DISABLED

TEST(FlightRecorderTest, DisabledBuildCompilesToNoOps) {
  EXPECT_FALSE(obs::FlightEnabled());
  EXPECT_EQ(obs::FlightCapacity(), 0u);
  obs::FlightRecordSpan("flight/off", 1, obs::Clock::Now(), obs::Clock::Now());
  EXPECT_TRUE(obs::FlightSnapshot().empty());
  // The dump entry points still write an empty, valid trace so smoke
  // scripts work in every configuration.
  const std::string path = ::testing::TempDir() + "flight_off.json";
  ASSERT_TRUE(obs::FlightDump(path).ok());
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
}

#endif  // FAB_OBS_DISABLED

// --- /tracez span-tree builder. ---------------------------------------------

obs::FlightSpan Span(const char* name, uint64_t trace, int64_t start_ns,
                     int64_t dur_ns, int tid = 0) {
  obs::FlightSpan span;
  span.name = name;
  span.trace_id = trace;
  span.start_ns = start_ns;
  span.dur_ns = dur_ns;
  span.tid = tid;
  return span;
}

TEST(TracezJsonTest, NestsByContainmentAndSortsLongestFirst) {
  const std::vector<obs::FlightSpan> spans = {
      Span("net/request", 0xaa, 1000, 10000, 0),
      Span("net/dispatch", 0xaa, 1500, 500, 0),
      Span("serve/request", 0xaa, 3000, 6000, 2),
      Span("net/request", 0xbb, 2000, 2000, 0),
      Span("pipeline/step", 0, 0, 50000, 1),  // untraced: dropped
  };
  const std::string json = net::DebugService::TracezJson(
      spans, /*min_us=*/0.0, /*only_trace=*/0, /*max_traces=*/32);
  // Trace aa (10ms) sorts before bb (2ms).
  const size_t at_aa = json.find("00000000000000aa");
  const size_t at_bb = json.find("00000000000000bb");
  ASSERT_NE(at_aa, std::string::npos) << json;
  ASSERT_NE(at_bb, std::string::npos) << json;
  EXPECT_LT(at_aa, at_bb);
  // Children nest under the containing root.
  EXPECT_NE(json.find("\"children\":[{\"name\":\"net/dispatch\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("serve/request"), std::string::npos);
  EXPECT_EQ(json.find("pipeline/step"), std::string::npos);
}

TEST(TracezJsonTest, MinUsFiltersShortTraces) {
  const std::vector<obs::FlightSpan> spans = {
      Span("net/request", 0xaa, 0, 10'000'000, 0),  // 10ms
      Span("net/request", 0xbb, 0, 1'000'000, 0),   // 1ms
  };
  const std::string json = net::DebugService::TracezJson(
      spans, /*min_us=*/5000.0, /*only_trace=*/0, /*max_traces=*/32);
  EXPECT_NE(json.find("00000000000000aa"), std::string::npos);
  EXPECT_EQ(json.find("00000000000000bb"), std::string::npos);
}

TEST(TracezJsonTest, OnlyTraceSelectsExactlyThatTraceIgnoringMinUs) {
  const std::vector<obs::FlightSpan> spans = {
      Span("net/request", 0xaa, 0, 10'000'000, 0),
      Span("net/request", 0xbb, 0, 1000, 0),
  };
  const std::string json = net::DebugService::TracezJson(
      spans, /*min_us=*/5000.0, /*only_trace=*/0xbb, /*max_traces=*/32);
  EXPECT_EQ(json.find("00000000000000aa"), std::string::npos);
  EXPECT_NE(json.find("00000000000000bb"), std::string::npos);
}

TEST(TracezJsonTest, LimitCapsTraceCount) {
  std::vector<obs::FlightSpan> spans;
  for (uint64_t t = 1; t <= 10; ++t) {
    spans.push_back(Span("net/request", t, 0, static_cast<int64_t>(t) * 1000,
                         0));
  }
  const std::string json = net::DebugService::TracezJson(
      spans, /*min_us=*/0.0, /*only_trace=*/0, /*max_traces=*/3);
  size_t count = 0;
  for (size_t at = json.find("\"trace\":"); at != std::string::npos;
       at = json.find("\"trace\":", at + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
  // Longest three survive: traces 10, 9, 8.
  EXPECT_NE(json.find("000000000000000a"), std::string::npos);
  EXPECT_EQ(json.find("0000000000000001\""), std::string::npos);
}

}  // namespace
}  // namespace fab
