// fab::obs tracer: span collection under concurrent ThreadPool load,
// Chrome trace_event export shape, B/E balance and LIFO nesting per
// thread, and arg rendering (including end-event args via AddArg).

#include "util/obs/trace.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace fab::obs {
namespace {

std::string TempTracePath(const char* tag) {
  return ::testing::TempDir() + "/fab_obs_trace_" + tag + "_" +
         std::to_string(::getpid()) + ".json";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One exported trace event, recovered from the writer's one-event-per-
/// line layout (good enough for assertions; CI revalidates the full file
/// with python -m json.tool).
struct ParsedEvent {
  std::string name;
  char phase = '?';
  int tid = -1;
  std::string args;  // raw args object text, "" when absent
};

std::string ExtractString(const std::string& line, const std::string& key) {
  const std::string marker = "\"" + key + "\":\"";
  const size_t at = line.find(marker);
  if (at == std::string::npos) return "";
  const size_t start = at + marker.size();
  const size_t end = line.find('"', start);
  return line.substr(start, end - start);
}

std::vector<ParsedEvent> ParseEvents(const std::string& json) {
  std::vector<ParsedEvent> events;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"name\":", 0) != 0) continue;
    ParsedEvent event;
    event.name = ExtractString(line, "name");
    const std::string phase = ExtractString(line, "ph");
    event.phase = phase.empty() ? '?' : phase[0];
    const size_t tid_at = line.find("\"tid\":");
    if (tid_at != std::string::npos) {
      event.tid = std::atoi(line.c_str() + tid_at + 6);
    }
    const size_t args_at = line.find("\"args\":{");
    if (args_at != std::string::npos) {
      const size_t start = args_at + 8;
      const size_t end = line.find('}', start);
      event.args = line.substr(start, end - start);
    }
    events.push_back(std::move(event));
  }
  return events;
}

TEST(ObsTraceTest, EnabledStateMatchesEnvBootstrap) {
  const char* env = std::getenv("FAB_TRACE");
  if (env != nullptr && *env != '\0') {
    EXPECT_TRUE(TraceEnabled());  // env bootstrap switched collection on
  }
  // With no env var, collection may still have been switched on by an
  // earlier StartTracing() in this process — only assert the env case.
}

TEST(ObsTraceTest, SpansBalanceAndNestUnderConcurrentPoolLoad) {
#if defined(FAB_OBS_DISABLED)
  GTEST_SKIP() << "span collection compiled out (FAB_OBS=OFF)";
#endif
  StartTracing();
  ASSERT_TRUE(TraceEnabled());

  constexpr size_t kItems = 64;
  util::ThreadPool pool(8);
  pool.ParallelFor(0, kItems, [](size_t i) {
    FAB_TRACE_SCOPE("test/outer", {{"item", i}});
    for (int k = 0; k < 3; ++k) {
      FAB_TRACE_SCOPE("test/inner", {{"k", k}});
    }
  });

  const std::string path = TempTracePath("nesting");
  ASSERT_TRUE(WriteTrace(path).ok());
  const std::string json = ReadFile(path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);

  const std::vector<ParsedEvent> events = ParseEvents(json);
  // 64 outer + 192 inner spans, times B and E (plus threadpool/task
  // spans from the instrumented pool) — all recorded, none dropped.
  size_t outer = 0, inner = 0;
  for (const ParsedEvent& event : events) {
    if (event.name == "test/outer" && event.phase == 'B') ++outer;
    if (event.name == "test/inner" && event.phase == 'B') ++inner;
  }
  EXPECT_EQ(outer, kItems);
  EXPECT_EQ(inner, 3 * kItems);

  // Per-thread: B/E counts balance and nesting is LIFO (every end event
  // matches the innermost open span on that thread). RAII scoped spans
  // make this structurally true; the buffer must preserve it.
  std::map<int, std::vector<const ParsedEvent*>> by_tid;
  for (const ParsedEvent& event : events) {
    ASSERT_GE(event.tid, 0) << event.name;
    by_tid[event.tid].push_back(&event);
  }
  EXPECT_GE(by_tid.size(), 1u);
  for (const auto& [tid, seq] : by_tid) {
    std::vector<std::string> stack;
    for (const ParsedEvent* event : seq) {
      if (event->phase == 'B') {
        stack.push_back(event->name);
      } else if (event->phase == 'E') {
        ASSERT_FALSE(stack.empty()) << "unbalanced E on tid " << tid;
        EXPECT_EQ(stack.back(), event->name) << "crossed spans on tid " << tid;
        stack.pop_back();
      }
    }
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST(ObsTraceTest, ArgsRenderOnBeginAndAddArgLandsOnEnd) {
#if defined(FAB_OBS_DISABLED)
  GTEST_SKIP() << "span collection compiled out (FAB_OBS=OFF)";
#endif
  StartTracing();
  {
    TraceSpan span("test/args", {{"iter", 7}, {"tag", "fra"}, {"x", 1.5}});
    span.AddArg("removed", 3);
  }
  const std::string path = TempTracePath("args");
  ASSERT_TRUE(WriteTrace(path).ok());
  const std::string json = ReadFile(path);
  bool saw_begin = false, saw_end = false;
  for (const ParsedEvent& event : ParseEvents(json)) {
    if (event.name != "test/args") continue;
    if (event.phase == 'B') {
      saw_begin = true;
      EXPECT_NE(event.args.find("\"iter\":7"), std::string::npos);
      EXPECT_NE(event.args.find("\"tag\":\"fra\""), std::string::npos);
      EXPECT_NE(event.args.find("\"x\":1.5"), std::string::npos);
    }
    if (event.phase == 'E' && !event.args.empty()) {
      saw_end = true;
      EXPECT_NE(event.args.find("\"removed\":3"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
}

TEST(ObsTraceTest, ExportIsStructurallyBalancedJson) {
  StartTracing();
  {
    FAB_TRACE_SCOPE("test/struct", {{"quote", "with \"escapes\"\n"}});
  }
  const std::string path = TempTracePath("struct");
  ASSERT_TRUE(WriteTrace(path).ok());
  const std::string json = ReadFile(path);
  // Structural smoke check (CI runs a real JSON parser over a full
  // PrecomputeAll trace): braces and brackets balance outside strings.
  long depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(ObsTraceTest, WriteTraceReportsUnwritablePath) {
  StartTracing();
  const Status status = WriteTrace("/nonexistent_dir_fab/trace.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace fab::obs
