#include "table/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace fab::table {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "fab_csv_" + name;
  }
};

TEST_F(CsvTest, RoundTripWithNulls) {
  auto t = Table::Create(DailyRange(Date(2021, 3, 1), Date(2021, 3, 4)));
  Column a(std::vector<double>{1.5, -2.25, 1e-9, 3.14159265358979});
  a.SetNull(2);
  ASSERT_TRUE(t->AddColumn("alpha", std::move(a)).ok());
  ASSERT_TRUE(t->AddColumn("beta", std::vector<double>{10, 20, 30, 40}).ok());

  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(*t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 4u);
  EXPECT_EQ(back->column_names(), t->column_names());
  EXPECT_EQ(back->index(), t->index());
  const Column* alpha = *back->GetColumn("alpha");
  EXPECT_TRUE(alpha->EqualsExactly(**t->GetColumn("alpha")));
  std::remove(path.c_str());
}

TEST_F(CsvTest, RoundTripPreservesFullPrecision) {
  auto t = Table::Create(DailyRange(Date(2021, 1, 1), Date(2021, 1, 1)));
  const double value = 0.1 + 0.2;  // not exactly representable as text
  ASSERT_TRUE(t->AddColumn("v", std::vector<double>{value}).ok());
  const std::string path = TempPath("precision.csv");
  ASSERT_TRUE(WriteCsv(*t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ((*back->GetColumn("v"))->value(0), value);
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadRejectsMissingFile) {
  EXPECT_FALSE(ReadCsv("/nonexistent/dir/file.csv").ok());
}

TEST_F(CsvTest, ReadRejectsBadHeader) {
  const std::string path = TempPath("badheader.csv");
  std::ofstream(path) << "time,a\n2020-01-01,1\n";
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadRejectsWrongFieldCount) {
  const std::string path = TempPath("badrow.csv");
  std::ofstream(path) << "date,a,b\n2020-01-01,1\n";
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadRejectsNonNumericField) {
  const std::string path = TempPath("nonnumeric.csv");
  std::ofstream(path) << "date,a\n2020-01-01,hello\n";
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadRejectsBadDate) {
  const std::string path = TempPath("baddate.csv");
  std::ofstream(path) << "date,a\n2020-13-01,1\n";
  EXPECT_FALSE(ReadCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadHandlesCrlfAndBom) {
  const std::string path = TempPath("crlf.csv");
  std::ofstream(path) << "\xEF\xBB\xBF"
                      << "date,a\r\n2020-01-01,1\r\n2020-01-02,2\r\n";
  auto t = ReadCsv(path);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_DOUBLE_EQ((*t->GetColumn("a"))->value(1), 2.0);
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadSkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  std::ofstream(path) << "date,a\n2020-01-01,1\n\n2020-01-02,2\n";
  auto t = ReadCsv(path);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  std::remove(path.c_str());
}

TEST_F(CsvTest, EmptyFieldBecomesNull) {
  const std::string path = TempPath("nulls.csv");
  std::ofstream(path) << "date,a,b\n2020-01-01,,5\n";
  auto t = ReadCsv(path);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE((*t->GetColumn("a"))->is_null(0));
  EXPECT_DOUBLE_EQ((*t->GetColumn("b"))->value(0), 5.0);
  std::remove(path.c_str());
}

TEST_F(CsvTest, WriteFailsOnBadPath) {
  auto t = Table::Create(DailyRange(Date(2020, 1, 1), Date(2020, 1, 1)));
  EXPECT_FALSE(WriteCsv(*t, "/nonexistent/dir/out.csv").ok());
}

TEST_F(CsvTest, EmptyTableRoundTrips) {
  auto t = Table::Create(DailyRange(Date(2020, 1, 1), Date(2020, 1, 2)));
  const std::string path = TempPath("empty.csv");
  ASSERT_TRUE(WriteCsv(*t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->num_columns(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fab::table
