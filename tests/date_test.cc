#include "util/date.h"

#include <gtest/gtest.h>

namespace fab {
namespace {

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(Date(1970, 1, 1).ordinal(), 0);
  EXPECT_EQ(Date().ordinal(), 0);
}

TEST(DateTest, KnownOrdinals) {
  EXPECT_EQ(Date(1970, 1, 2).ordinal(), 1);
  EXPECT_EQ(Date(1969, 12, 31).ordinal(), -1);
  EXPECT_EQ(Date(2000, 3, 1).ordinal(), 11017);
  EXPECT_EQ(Date(2017, 1, 1).ordinal(), 17167);
}

TEST(DateTest, CivilRoundTrip) {
  const Date d(2023, 6, 30);
  EXPECT_EQ(d.year(), 2023);
  EXPECT_EQ(d.month(), 6);
  EXPECT_EQ(d.day(), 30);
}

TEST(DateTest, LeapYearFebruary) {
  EXPECT_TRUE(Date::IsValidCivil(2020, 2, 29));
  EXPECT_FALSE(Date::IsValidCivil(2021, 2, 29));
  EXPECT_TRUE(Date::IsValidCivil(2000, 2, 29));   // divisible by 400
  EXPECT_FALSE(Date::IsValidCivil(1900, 2, 29));  // divisible by 100 only
}

TEST(DateTest, InvalidCivilRejected) {
  EXPECT_FALSE(Date::IsValidCivil(2020, 0, 1));
  EXPECT_FALSE(Date::IsValidCivil(2020, 13, 1));
  EXPECT_FALSE(Date::IsValidCivil(2020, 4, 31));
  EXPECT_FALSE(Date::IsValidCivil(2020, 1, 0));
}

TEST(DateTest, AddDaysCrossesMonthAndYear) {
  EXPECT_EQ(Date(2020, 12, 31).AddDays(1), Date(2021, 1, 1));
  EXPECT_EQ(Date(2020, 2, 28).AddDays(1), Date(2020, 2, 29));
  EXPECT_EQ(Date(2020, 2, 28).AddDays(2), Date(2020, 3, 1));
  EXPECT_EQ(Date(2020, 1, 15).AddDays(-15), Date(2019, 12, 31));
}

TEST(DateTest, Difference) {
  EXPECT_EQ(Date(2020, 1, 10) - Date(2020, 1, 1), 9);
  EXPECT_EQ(Date(2021, 1, 1) - Date(2020, 1, 1), 366);  // 2020 is leap
  EXPECT_EQ(Date(2020, 1, 1) - Date(2021, 1, 1), -366);
}

TEST(DateTest, Ordering) {
  EXPECT_LT(Date(2020, 1, 1), Date(2020, 1, 2));
  EXPECT_LE(Date(2020, 1, 1), Date(2020, 1, 1));
  EXPECT_GT(Date(2021, 1, 1), Date(2020, 12, 31));
  EXPECT_NE(Date(2021, 1, 1), Date(2020, 1, 1));
}

TEST(DateTest, DayOfWeek) {
  EXPECT_EQ(Date(1970, 1, 1).day_of_week(), 4);  // Thursday
  EXPECT_EQ(Date(2024, 1, 1).day_of_week(), 1);  // Monday
  EXPECT_EQ(Date(2023, 6, 25).day_of_week(), 7); // Sunday
}

TEST(DateTest, ToStringFormatsIso) {
  EXPECT_EQ(Date(2017, 1, 1).ToString(), "2017-01-01");
  EXPECT_EQ(Date(2023, 12, 9).ToString(), "2023-12-09");
}

TEST(DateTest, FromStringParsesIso) {
  auto d = Date::FromString("2019-07-04");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, Date(2019, 7, 4));
}

TEST(DateTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(Date::FromString("not a date").ok());
  EXPECT_FALSE(Date::FromString("2019-13-04").ok());
  EXPECT_FALSE(Date::FromString("2019-02-30").ok());
  EXPECT_FALSE(Date::FromString("2019-07-04x").ok());
  EXPECT_FALSE(Date::FromString("").ok());
}

TEST(DateTest, StringRoundTrip) {
  const Date d(1999, 11, 21);
  EXPECT_EQ(*Date::FromString(d.ToString()), d);
}

TEST(DailyRangeTest, InclusiveBounds) {
  const auto range = DailyRange(Date(2020, 1, 1), Date(2020, 1, 5));
  ASSERT_EQ(range.size(), 5u);
  EXPECT_EQ(range.front(), Date(2020, 1, 1));
  EXPECT_EQ(range.back(), Date(2020, 1, 5));
}

TEST(DailyRangeTest, SingleDay) {
  const auto range = DailyRange(Date(2020, 1, 1), Date(2020, 1, 1));
  EXPECT_EQ(range.size(), 1u);
}

TEST(DailyRangeTest, EmptyWhenReversed) {
  EXPECT_TRUE(DailyRange(Date(2020, 1, 2), Date(2020, 1, 1)).empty());
}

class DateRoundTripSweep : public ::testing::TestWithParam<int> {};

TEST_P(DateRoundTripSweep, OrdinalRoundTripsThroughCivil) {
  const int year = GetParam();
  // Walk the whole year day by day, checking ordinal monotonicity and
  // civil round-trips.
  Date d(year, 1, 1);
  int days = 0;
  while (d.year() == year) {
    EXPECT_EQ(Date(d.year(), d.month(), d.day()), d);
    EXPECT_EQ(Date::FromOrdinal(d.ordinal()), d);
    d = d.AddDays(1);
    ++days;
  }
  const bool leap = (year % 4 == 0 && (year % 100 != 0 || year % 400 == 0));
  EXPECT_EQ(days, leap ? 366 : 365);
}

INSTANTIATE_TEST_SUITE_P(Years, DateRoundTripSweep,
                         ::testing::Values(1970, 1999, 2000, 2016, 2020, 2023,
                                           2100));

}  // namespace
}  // namespace fab
