#include "serve/flat_forest.h"

#include <gtest/gtest.h>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "util/random.h"

namespace fab::serve {
namespace {

ml::ColMatrix MakeMatrix(size_t n, size_t f, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  return *ml::ColMatrix::FromColumns(std::move(cols));
}

std::vector<double> MakeTarget(const ml::ColMatrix& x, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    y[i] = x.at(i, 0) * x.at(i, 1) + 0.5 * x.at(i, 2) + 0.1 * rng.Normal();
  }
  return y;
}

TEST(FlatForestTest, MatchesForestVirtualPathExactly) {
  const ml::ColMatrix train = MakeMatrix(400, 10, 21);
  const ml::ColMatrix test = MakeMatrix(257, 10, 22);
  ml::ForestParams params;
  params.n_trees = 30;
  params.max_depth = 8;
  ml::RandomForestRegressor rf(params);
  ASSERT_TRUE(rf.Fit(train, MakeTarget(train, 23)).ok());

  auto flat = FlatForest::FromRegressor(rf);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->num_trees(), 30u);

  const std::vector<double> want = rf.Predict(test);
  const std::vector<double> got = flat->Predict(test);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    // The flat kernel reproduces the virtual path bitwise (same tree
    // order, same mean), so serving results are indistinguishable.
    EXPECT_EQ(want[i], got[i]) << "row " << i;
  }
  for (size_t i = 0; i < test.rows(); ++i) {
    EXPECT_EQ(rf.PredictOne(test, i), flat->PredictOne(test, i));
  }
}

TEST(FlatForestTest, MatchesGbdtVirtualPathExactly) {
  const ml::ColMatrix train = MakeMatrix(400, 10, 24);
  const ml::ColMatrix test = MakeMatrix(123, 10, 25);
  ml::GbdtParams params;
  params.n_rounds = 40;
  params.max_depth = 4;
  ml::GbdtRegressor gbdt(params);
  ASSERT_TRUE(gbdt.Fit(train, MakeTarget(train, 26)).ok());

  auto flat = FlatForest::FromRegressor(gbdt);
  ASSERT_TRUE(flat.ok());
  const std::vector<double> want = gbdt.Predict(test);
  const std::vector<double> got = flat->Predict(test);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(want[i], got[i]);
}

TEST(FlatForestTest, PredictRangeCoversSubsets) {
  const ml::ColMatrix train = MakeMatrix(200, 5, 27);
  const ml::ColMatrix test = MakeMatrix(50, 5, 28);
  ml::ForestParams params;
  params.n_trees = 10;
  ml::RandomForestRegressor rf(params);
  ASSERT_TRUE(rf.Fit(train, MakeTarget(train, 29)).ok());
  auto flat = FlatForest::FromRegressor(rf);
  ASSERT_TRUE(flat.ok());
  const std::vector<double> all = flat->Predict(test);
  std::vector<double> part(7);
  flat->PredictRange(test, 11, 18, part.data());
  for (size_t i = 0; i < part.size(); ++i) EXPECT_EQ(part[i], all[11 + i]);
}

TEST(FlatForestTest, RejectsNonEnsembleModels) {
  // The flattener only understands tree ensembles.
  class Dummy : public ml::Regressor {
   public:
    Status Fit(const ml::ColMatrix&, const std::vector<double>&) override {
      return Status::OK();
    }
    double PredictOne(const ml::ColMatrix&, size_t) const override {
      return 0.0;
    }
    Status SetParam(const std::string&, double) override {
      return Status::OK();
    }
    std::unique_ptr<ml::Regressor> CloneUnfitted() const override {
      return nullptr;
    }
    std::vector<double> FeatureImportances() const override { return {}; }
    std::string name() const override { return "dummy"; }
  };
  Dummy dummy;
  EXPECT_FALSE(FlatForest::FromRegressor(dummy).ok());
}

TEST(FlatForestTest, EmptyEnsemblePredictsZero) {
  FlatForest flat;
  EXPECT_TRUE(flat.empty());
  const ml::ColMatrix test = MakeMatrix(3, 2, 30);
  const std::vector<double> out = flat.Predict(test);
  for (double v : out) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace fab::serve
