#include "core/sweep.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "net/json.h"

namespace fab::core {
namespace {

SweepOptions MicroGrid(const std::string& cache_tag) {
  SweepOptions options;
  options.seeds = {501, 502};
  options.regimes = {*RegimeByName("baseline"), *RegimeByName("perfect_storm")};
  options.periods = {StudyPeriod::k2019};
  options.windows = {1};
  options.improvement_seeds = 0;  // skip the expensive CV property
  options.tiny_models = true;
  options.cache_dir = ::testing::TempDir() + "fab_sweep_test_" + cache_tag;
  return options;
}

TEST(SweepTest, StandardRegimesCoverEveryInjectorAndCompose) {
  const auto& regimes = StandardRegimes();
  ASSERT_EQ(regimes.size(), 8u);
  std::set<std::string> names;
  for (const auto& r : regimes) names.insert(r.name);
  EXPECT_EQ(names.size(), regimes.size()) << "regime names must be unique";
  EXPECT_TRUE(names.count("baseline"));
  EXPECT_FALSE(StandardRegimes()[0].stress.any_enabled())
      << "baseline must be the unstressed market";
  // Each injector appears alone...
  EXPECT_TRUE(RegimeByName("flash_crash")->stress.flash_crash.enabled);
  EXPECT_TRUE(RegimeByName("depeg")->stress.depeg.enabled);
  EXPECT_TRUE(RegimeByName("outage")->stress.outage.enabled);
  EXPECT_TRUE(RegimeByName("rank_churn")->stress.rank_churn.enabled);
  // ...and perfect_storm composes all four.
  const auto storm = RegimeByName("perfect_storm");
  ASSERT_TRUE(storm.ok());
  EXPECT_TRUE(storm->stress.flash_crash.enabled);
  EXPECT_TRUE(storm->stress.depeg.enabled);
  EXPECT_TRUE(storm->stress.outage.enabled);
  EXPECT_TRUE(storm->stress.rank_churn.enabled);
  EXPECT_FALSE(RegimeByName("no_such_regime").ok());
}

TEST(SweepTest, RejectsEmptyGrid) {
  SweepOptions options;
  EXPECT_FALSE(RunSweep(options).ok());
  options.seeds = {1};
  EXPECT_FALSE(RunSweep(options).ok()) << "no regimes";
}

TEST(SweepTest, MicroGridRunsCleanAndEmitsParsableDeterministicReport) {
  const auto report = RunSweep(MicroGrid("a"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->cells, 4u);
  EXPECT_EQ(report->cell_errors, 0u) << report->first_error;
  EXPECT_GT(report->checks, 0u);
  // Tiny models are for plumbing tests, not science: property outcomes
  // are not asserted here beyond the NaN guard, which must hold at any
  // model size.
  for (const auto& p : report->properties) {
    if (p.property == "no_nan_or_inf") {
      EXPECT_EQ(p.passed, p.checked) << "NaN/Inf escaped a feature vector";
    }
  }
  EXPECT_EQ(report->regimes.size(), 2u);
  for (const auto& r : report->regimes) {
    EXPECT_EQ(r.cells, 2u) << r.regime;
  }
  EXPECT_EQ(report->violation_count, report->violations.size());

  // The BENCH document must parse with the repo's own JSON parser and
  // carry the scalar results block perf_gate consumes.
  const std::string json = report->ToJson();
  auto doc = net::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const net::JsonValue* results = doc->Find("results");
  ASSERT_NE(results, nullptr);
  EXPECT_EQ(*results->GetNumber("cells"), 4.0);
  EXPECT_EQ(*results->GetNumber("cell_errors"), 0.0);
  ASSERT_TRUE(doc->Find("properties") != nullptr &&
              doc->Find("properties")->is_array());
  ASSERT_TRUE(doc->Find("regimes_detail") != nullptr &&
              doc->Find("regimes_detail")->is_array());

  // Same grid, fresh cache: bitwise-identical report (no timestamps, no
  // iteration-order leaks).
  const auto again = RunSweep(MicroGrid("b"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(json, again->ToJson());
}

TEST(SweepTest, ViolationReproCommandNamesTheExactCell) {
  // Force a violation: demand an absurd rank-stability bar so the
  // regime-level property trips, then check the repro command. Reuses
  // the "a" cache — same grid, only the threshold differs.
  SweepOptions options = MicroGrid("a");
  options.rank_stability_min_jaccard = 1.01;  // unattainable
  const auto report = RunSweep(options);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->violation_count, 0u);
  const std::string json = report->ToJson();
  auto doc = net::ParseJson(json);
  ASSERT_TRUE(doc.ok());
  const net::JsonValue* violations = doc->Find("violations");
  ASSERT_NE(violations, nullptr);
  ASSERT_TRUE(violations->is_array());
  ASSERT_FALSE(violations->array().empty());
  const auto& first = violations->array()[0];
  const auto repro = first.GetString("repro");
  ASSERT_TRUE(repro.ok());
  EXPECT_NE(repro->find("fab_sweep"), std::string::npos);
  EXPECT_NE(repro->find("--regimes"), std::string::npos);
}

}  // namespace
}  // namespace fab::core
