#include "explain/shap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace fab::explain {
namespace {

struct SmallProblem {
  ml::ColMatrix x;
  ml::RegressionTree tree;
};

SmallProblem FitSmallTree(uint64_t seed, size_t n, size_t f, int depth) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 2.0 * cols[0][i] +
           (f > 1 ? cols[1][i] * cols[1 % f][i] : 0.0) + 0.2 * rng.Normal();
  }
  SmallProblem p;
  p.x = *ml::ColMatrix::FromColumns(cols);
  auto binned = ml::BinnedMatrix::Build(p.x);
  std::vector<double> g(n), h(n, 1.0);
  for (size_t i = 0; i < n; ++i) g[i] = -y[i];
  ml::TreeParams params;
  params.max_depth = depth;
  EXPECT_TRUE(p.tree.Fit(*binned, g, h, params, nullptr).ok());
  return p;
}

TEST(TreeShapTest, MatchesExactShapleyOnSmallTrees) {
  const SmallProblem p = FitSmallTree(3, 200, 5, 4);
  for (size_t row = 0; row < 20; ++row) {
    const auto fast = TreeShapOne(p.tree, p.x, row);
    const auto exact = ExactTreeShapley(p.tree, p.x, row);
    ASSERT_TRUE(fast.ok() && exact.ok());
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR((*fast)[j], (*exact)[j], 1e-9) << "row " << row << " f " << j;
    }
  }
}

TEST(TreeShapTest, EfficiencyAxiom) {
  // sum(phi) = f(x) - E[f(x)] for every sample.
  const SmallProblem p = FitSmallTree(5, 300, 6, 5);
  const std::vector<bool> empty_set(6, false);
  for (size_t row = 0; row < 30; ++row) {
    const auto phi = TreeShapOne(p.tree, p.x, row);
    double sum = 0.0;
    for (double v : *phi) sum += v;
    const double base = TreeConditionalExpectation(p.tree, p.x, row, empty_set);
    const double pred = p.tree.PredictOne(p.x, row);
    EXPECT_NEAR(sum, pred - base, 1e-9);
  }
}

TEST(TreeShapTest, DummyFeatureGetsZero) {
  // A feature the tree never splits on must receive phi = 0.
  const SmallProblem p = FitSmallTree(7, 150, 1, 3);
  // Append an unused dummy column to the matrix schema.
  ml::ColMatrix wide(150, 2);
  for (size_t i = 0; i < 150; ++i) {
    wide.set(i, 0, p.x.at(i, 0));
    wide.set(i, 1, 42.0);
  }
  const auto phi = TreeShapOne(p.tree, wide, 3);
  ASSERT_TRUE(phi.ok());
  EXPECT_DOUBLE_EQ((*phi)[1], 0.0);
  EXPECT_NE((*phi)[0], 0.0);
}

TEST(TreeShapTest, ScaleMultipliesValues) {
  const SmallProblem p = FitSmallTree(9, 200, 4, 4);
  const auto one = TreeShapOne(p.tree, p.x, 0, 1.0);
  const auto tenth = TreeShapOne(p.tree, p.x, 0, 0.1);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR((*tenth)[j], 0.1 * (*one)[j], 1e-12);
  }
}

TEST(TreeShapTest, UnfittedTreeRejected) {
  ml::RegressionTree tree;
  ml::ColMatrix x(3, 2);
  EXPECT_FALSE(TreeShapOne(tree, x, 0).ok());
}

TEST(TreeShapTest, RowOutOfRangeRejected) {
  const SmallProblem p = FitSmallTree(11, 100, 3, 3);
  EXPECT_FALSE(TreeShapOne(p.tree, p.x, 100).ok());
}

TEST(ExactShapleyTest, RejectsTooManyFeatures) {
  const SmallProblem p = FitSmallTree(13, 60, 3, 2);
  ml::ColMatrix wide(60, 20);
  EXPECT_FALSE(ExactTreeShapley(p.tree, wide, 0).ok());
}

TEST(ConditionalExpectationTest, FullSetEqualsPrediction) {
  const SmallProblem p = FitSmallTree(15, 200, 4, 5);
  const std::vector<bool> all(4, true);
  for (size_t row = 0; row < 10; ++row) {
    EXPECT_DOUBLE_EQ(TreeConditionalExpectation(p.tree, p.x, row, all),
                     p.tree.PredictOne(p.x, row));
  }
}

TEST(ConditionalExpectationTest, EmptySetIsCoverWeightedMean) {
  const SmallProblem p = FitSmallTree(17, 200, 4, 5);
  const std::vector<bool> none(4, false);
  const double base = TreeConditionalExpectation(p.tree, p.x, 0, none);
  // Same for every row (no feature conditioning).
  EXPECT_DOUBLE_EQ(TreeConditionalExpectation(p.tree, p.x, 5, none), base);
}

TEST(MeanAbsShapTest, ForestRanksSignalFeatureFirst) {
  Rng rng(19);
  const size_t n = 400;
  std::vector<double> signal(n), noise(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = rng.Normal();
    noise[i] = rng.Normal();
    y[i] = 4.0 * signal[i] + 0.3 * rng.Normal();
  }
  auto x = ml::ColMatrix::FromColumns({noise, signal});
  ml::ForestParams params;
  params.n_trees = 15;
  params.max_depth = 5;
  ml::RandomForestRegressor rf(params);
  ASSERT_TRUE(rf.Fit(*x, y).ok());
  const auto shap = MeanAbsShapForest(rf, *x);
  ASSERT_TRUE(shap.ok());
  EXPECT_GT((*shap)[1], 5.0 * (*shap)[0]);
}

TEST(MeanAbsShapTest, GbdtEfficiencySumsToPredictionSpread) {
  Rng rng(21);
  const size_t n = 300;
  std::vector<double> c0(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    c0[i] = rng.Normal();
    y[i] = 2.0 * c0[i] + 0.2 * rng.Normal();
  }
  auto x = ml::ColMatrix::FromColumns({c0});
  ml::GbdtParams params;
  params.n_rounds = 30;
  params.max_depth = 3;
  ml::GbdtRegressor xgb(params);
  ASSERT_TRUE(xgb.Fit(*x, y).ok());
  const auto shap = MeanAbsShapGbdt(xgb, *x);
  ASSERT_TRUE(shap.ok());
  // One informative feature: its mean |phi| is close to the model's mean
  // absolute deviation from the base score.
  double mad = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mad += std::fabs(xgb.PredictOne(*x, i) - xgb.base_score());
  }
  mad /= static_cast<double>(n);
  EXPECT_NEAR((*shap)[0], mad, 0.15 * mad);
}

TEST(MeanAbsShapTest, UnfittedModelsRejected) {
  ml::RandomForestRegressor rf;
  ml::GbdtRegressor xgb;
  ml::ColMatrix x(3, 2);
  EXPECT_FALSE(MeanAbsShapForest(rf, x).ok());
  EXPECT_FALSE(MeanAbsShapGbdt(xgb, x).ok());
}

class ShapAgreementSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShapAgreementSweep, FastEqualsExactAcrossRandomTrees) {
  const SmallProblem p = FitSmallTree(GetParam(), 150, 6, 5);
  double max_err = 0.0;
  for (size_t row = 0; row < 10; ++row) {
    const auto fast = TreeShapOne(p.tree, p.x, row);
    const auto exact = ExactTreeShapley(p.tree, p.x, row);
    for (size_t j = 0; j < 6; ++j) {
      max_err = std::max(max_err, std::fabs((*fast)[j] - (*exact)[j]));
    }
  }
  EXPECT_LT(max_err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapAgreementSweep,
                         ::testing::Values(31, 37, 41, 43, 47));

}  // namespace
}  // namespace fab::explain
