#include "ta/volume.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace fab::ta {
namespace {

TEST(ObvTest, AccumulatesSignedVolume) {
  const std::vector<double> close{10, 11, 10, 10, 12};
  const std::vector<double> volume{100, 200, 300, 400, 500};
  const table::Column obv = Obv(close, volume);
  EXPECT_DOUBLE_EQ(obv.value(0), 0.0);
  EXPECT_DOUBLE_EQ(obv.value(1), 200.0);   // up day
  EXPECT_DOUBLE_EQ(obv.value(2), -100.0);  // down day
  EXPECT_DOUBLE_EQ(obv.value(3), -100.0);  // unchanged
  EXPECT_DOUBLE_EQ(obv.value(4), 400.0);   // up day
}

TEST(ObvTest, MismatchedSizesAllNull) {
  EXPECT_EQ(Obv({1, 2}, {1}).null_count(), 2u);
}

TEST(CmfTest, BoundedInMinusOneOne) {
  Rng rng(3);
  const size_t n = 300;
  std::vector<double> close(n), high(n), low(n), volume(n);
  double p = 100.0;
  for (size_t i = 0; i < n; ++i) {
    p *= std::exp(0.02 * rng.Normal());
    close[i] = p;
    high[i] = p * 1.02;
    low[i] = p * 0.98;
    volume[i] = 1000.0 * (1.0 + rng.Uniform());
  }
  const table::Column cmf = ChaikinMoneyFlow(high, low, close, volume, 20);
  for (size_t i = 0; i < n; ++i) {
    if (cmf.is_null(i)) continue;
    EXPECT_GE(cmf.value(i), -1.0);
    EXPECT_LE(cmf.value(i), 1.0);
  }
}

TEST(CmfTest, CloseAtHighGivesPositiveFlow) {
  const size_t n = 60;
  std::vector<double> high(n, 12.0), low(n, 10.0), close(n, 12.0),
      volume(n, 100.0);
  const table::Column cmf = ChaikinMoneyFlow(high, low, close, volume, 20);
  EXPECT_NEAR(cmf.value(40), 1.0, 1e-12);
}

TEST(CmfTest, CloseAtLowGivesNegativeFlow) {
  const size_t n = 60;
  std::vector<double> high(n, 12.0), low(n, 10.0), close(n, 10.0),
      volume(n, 100.0);
  const table::Column cmf = ChaikinMoneyFlow(high, low, close, volume, 20);
  EXPECT_NEAR(cmf.value(40), -1.0, 1e-12);
}

TEST(VwapTest, FlatMarketEqualsTypicalPrice) {
  const size_t n = 40;
  std::vector<double> high(n, 12.0), low(n, 10.0), close(n, 11.0),
      volume(n, 100.0);
  const table::Column vwap = RollingVwap(high, low, close, volume, 10);
  EXPECT_DOUBLE_EQ(vwap.value(20), 11.0);
}

TEST(VwapTest, WeightsHighVolumeDays) {
  // Two price levels; the second has 9x the volume, so VWAP leans there.
  std::vector<double> close{10, 10, 10, 10, 10, 20, 20, 20, 20, 20};
  std::vector<double> volume{1, 1, 1, 1, 1, 9, 9, 9, 9, 9};
  const table::Column vwap =
      RollingVwap(close, close, close, volume, 10);
  EXPECT_NEAR(vwap.value(9), (5.0 * 10.0 + 45.0 * 20.0) / 50.0, 1e-12);
}

TEST(VwapTest, StaysWithinPriceRange) {
  Rng rng(5);
  const size_t n = 200;
  std::vector<double> close(n), high(n), low(n), volume(n);
  double p = 50.0;
  double global_lo = 1e18, global_hi = 0.0;
  for (size_t i = 0; i < n; ++i) {
    p *= std::exp(0.01 * rng.Normal());
    close[i] = p;
    high[i] = p * 1.01;
    low[i] = p * 0.99;
    volume[i] = 100.0 + 50.0 * rng.Uniform();
    global_lo = std::min(global_lo, low[i]);
    global_hi = std::max(global_hi, high[i]);
  }
  const table::Column vwap = RollingVwap(high, low, close, volume, 20);
  for (size_t i = 0; i < n; ++i) {
    if (vwap.is_null(i)) continue;
    EXPECT_GE(vwap.value(i), global_lo);
    EXPECT_LE(vwap.value(i), global_hi);
  }
}

}  // namespace
}  // namespace fab::ta
