#include "net/http.h"

#include <gtest/gtest.h>

#include <string>

namespace fab::net {
namespace {

Status FeedAll(HttpParser& parser, const std::string& wire) {
  return parser.Consume(wire.data(), wire.size());
}

TEST(NetHttpTest, ParsesPostRequestInOneShot) {
  HttpParser parser(HttpParser::Mode::kRequest);
  const std::string wire =
      "POST /predict HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "{\"rows\":[]}";
  ASSERT_TRUE(FeedAll(parser, wire).ok());
  ASSERT_TRUE(parser.done());
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/predict");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.body, "{\"rows\":[]}");
  ASSERT_NE(request.Header("content-type"), nullptr);  // case-insensitive
  EXPECT_EQ(*request.Header("CONTENT-TYPE"), "application/json");
  EXPECT_TRUE(request.KeepAlive());
}

TEST(NetHttpTest, ParsesByteByByte) {
  HttpParser parser(HttpParser::Mode::kRequest);
  const std::string wire =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  for (char c : wire) {
    ASSERT_TRUE(parser.Consume(&c, 1).ok());
  }
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(NetHttpTest, KeepAliveSemantics) {
  HttpRequest request;
  request.version = "HTTP/1.1";
  EXPECT_TRUE(request.KeepAlive());
  request.headers.emplace_back("Connection", "close");
  EXPECT_FALSE(request.KeepAlive());

  HttpRequest old;
  old.version = "HTTP/1.0";
  EXPECT_FALSE(old.KeepAlive());
  old.headers.emplace_back("connection", "Keep-Alive");
  EXPECT_TRUE(old.KeepAlive());
}

TEST(NetHttpTest, PipelinedSurplusSurvivesReset) {
  HttpParser parser(HttpParser::Mode::kRequest);
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(FeedAll(parser, two).ok());
  ASSERT_TRUE(parser.done());
  EXPECT_EQ(parser.request().target, "/a");
  ASSERT_TRUE(parser.Reset().ok());
  ASSERT_TRUE(parser.done());  // second message parsed from surplus
  EXPECT_EQ(parser.request().target, "/b");
  ASSERT_TRUE(parser.Reset().ok());
  EXPECT_FALSE(parser.done());  // buffer drained
}

TEST(NetHttpTest, ResetBeforeDoneIsFailedPrecondition) {
  HttpParser parser(HttpParser::Mode::kRequest);
  EXPECT_EQ(parser.Reset().code(), StatusCode::kFailedPrecondition);
}

TEST(NetHttpTest, RejectsMalformedRequests) {
  for (const char* wire :
       {"BROKEN\r\n\r\n",                           // no spaces
        "GET /\r\n\r\n",                            // missing version
        "GET / FTP/1.1\r\n\r\n",                    // wrong protocol
        "GET / HTTP/1.1\r\n folded\r\n\r\n",        // obsolete folding
        "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",    // malformed header
        "GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
        "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"}) {
    HttpParser parser(HttpParser::Mode::kRequest);
    Status status = FeedAll(parser, wire);
    EXPECT_FALSE(status.ok()) << wire;
    EXPECT_TRUE(parser.error()) << wire;
  }
}

TEST(NetHttpTest, EnforcesHeadAndBodyLimits) {
  HttpParser::Limits limits;
  limits.max_head_bytes = 64;
  limits.max_body_bytes = 8;

  HttpParser head_parser(HttpParser::Mode::kRequest, limits);
  const std::string big_head =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(128, 'a');
  EXPECT_FALSE(FeedAll(head_parser, big_head).ok());

  // The limit must hold even when the complete, terminated header
  // section lands in a single Consume call (no mid-accumulation check
  // ever fires on that path).
  HttpParser one_shot_parser(HttpParser::Mode::kRequest, limits);
  const std::string big_complete_head =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(128, 'a') + "\r\n\r\n";
  Status one_shot = FeedAll(one_shot_parser, big_complete_head);
  EXPECT_FALSE(one_shot.ok());
  EXPECT_NE(one_shot.message().find("exceeds"), std::string::npos);

  HttpParser body_parser(HttpParser::Mode::kRequest, limits);
  Status status = FeedAll(
      body_parser, "POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("limit"), std::string::npos);
}

TEST(NetHttpTest, ParsesResponseMode) {
  HttpParser parser(HttpParser::Mode::kResponse);
  const std::string wire =
      "HTTP/1.1 429 Too Many Requests\r\n"
      "Retry-After: 2\r\n"
      "Content-Length: 2\r\n"
      "\r\n"
      "{}";
  ASSERT_TRUE(FeedAll(parser, wire).ok());
  ASSERT_TRUE(parser.done());
  const HttpResponse& response = parser.response();
  EXPECT_EQ(response.status_code, 429);
  EXPECT_EQ(response.reason, "Too Many Requests");
  ASSERT_NE(response.Header("retry-after"), nullptr);
  EXPECT_EQ(*response.Header("retry-after"), "2");
  EXPECT_EQ(response.body, "{}");
}

TEST(NetHttpTest, RejectsMalformedStatusLine) {
  for (const char* wire : {"HTTP/1.1 banana OK\r\n\r\n",
                           "HTTP/1.1 42 Low\r\n\r\n",
                           "NOTHTTP 200 OK\r\n\r\n"}) {
    HttpParser parser(HttpParser::Mode::kResponse);
    EXPECT_FALSE(FeedAll(parser, wire).ok()) << wire;
  }
}

TEST(NetHttpTest, SerializeRoundTripsThroughParser) {
  HttpResponse out = HttpResponse::Json(200, "{\"status\":\"ok\"}");
  out.headers.emplace_back("Retry-After", "1");
  const std::string wire = out.Serialize(/*keep_alive=*/true);

  HttpParser parser(HttpParser::Mode::kResponse);
  ASSERT_TRUE(FeedAll(parser, wire).ok());
  ASSERT_TRUE(parser.done());
  const HttpResponse& in = parser.response();
  EXPECT_EQ(in.status_code, 200);
  EXPECT_EQ(in.body, "{\"status\":\"ok\"}");
  EXPECT_EQ(*in.Header("Content-Type"), "application/json");
  EXPECT_EQ(*in.Header("Content-Length"), "15");
  EXPECT_EQ(*in.Header("Connection"), "keep-alive");
  EXPECT_EQ(*in.Header("Retry-After"), "1");
}

TEST(NetHttpTest, SerializeCloseConnection) {
  HttpResponse out = HttpResponse::Json(503, "{}");
  const std::string wire = out.Serialize(/*keep_alive=*/false);
  EXPECT_NE(wire.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
}

TEST(NetHttpTest, ConsumeAfterErrorIsFailedPrecondition) {
  HttpParser parser(HttpParser::Mode::kRequest);
  ASSERT_FALSE(FeedAll(parser, "BROKEN\r\n\r\n").ok());
  EXPECT_EQ(FeedAll(parser, "GET / HTTP/1.1\r\n\r\n").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace fab::net
