#include "ml/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fab::ml {
namespace {

TEST(MetricsTest, MseKnownValues) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({0, 0}, {3, 4}), 12.5);
  EXPECT_TRUE(std::isnan(MeanSquaredError({1}, {1, 2})));
  EXPECT_TRUE(std::isnan(MeanSquaredError({}, {})));
}

TEST(MetricsTest, RmseIsSqrtMse) {
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0, 0}, {3, 4}), std::sqrt(12.5));
}

TEST(MetricsTest, MaeKnownValues) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1, 2, 3}, {2, 2, 5}), 1.0);
  EXPECT_TRUE(std::isnan(MeanAbsoluteError({1}, {})));
}

TEST(MetricsTest, MapeSkipsZeroTruth) {
  EXPECT_NEAR(MeanAbsolutePercentageError({100, 0, 200}, {110, 5, 180}),
              (10.0 + 10.0) / 2.0, 1e-12);
  EXPECT_TRUE(std::isnan(MeanAbsolutePercentageError({0, 0}, {1, 2})));
}

TEST(MetricsTest, R2PerfectPredictionIsOne) {
  EXPECT_DOUBLE_EQ(R2Score({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(MetricsTest, R2MeanPredictorIsZero) {
  EXPECT_DOUBLE_EQ(R2Score({1, 2, 3}, {2, 2, 2}), 0.0);
}

TEST(MetricsTest, R2WorseThanMeanIsNegative) {
  EXPECT_LT(R2Score({1, 2, 3}, {3, 2, 1}), 0.0);
}

TEST(MetricsTest, R2ConstantTruthEdgeCases) {
  EXPECT_DOUBLE_EQ(R2Score({5, 5, 5}, {5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(R2Score({5, 5, 5}, {4, 5, 6}), 0.0);
}

TEST(MetricsTest, MseIsSymmetricInSign) {
  EXPECT_DOUBLE_EQ(MeanSquaredError({0}, {2}), MeanSquaredError({0}, {-2}));
}

}  // namespace
}  // namespace fab::ml
