#include "core/report.h"

#include <gtest/gtest.h>

namespace fab::core {
namespace {

TEST(AsciiTableTest, RendersHeaderAndRows) {
  AsciiTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"bb", "22"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| bb    | 22    |"), std::string::npos);
  EXPECT_NE(out.find("+-------+-------+"), std::string::npos);
}

TEST(AsciiTableTest, ColumnWidthFollowsWidestCell) {
  AsciiTable table({"x"});
  table.AddRow({"longer_cell"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| longer_cell |"), std::string::npos);
}

TEST(AsciiTableTest, EmptyTableStillRendersHeader) {
  AsciiTable table({"only"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| only |"), std::string::npos);
}

TEST(AsciiSeriesTest, ContainsTitleAndBounds) {
  const std::string out =
      AsciiSeries("My series", {"d1", "d2", "d3"}, {1.0, 3.0, 2.0});
  EXPECT_NE(out.find("My series"), std::string::npos);
  EXPECT_NE(out.find("max 3.00"), std::string::npos);
  EXPECT_NE(out.find("min 1.00"), std::string::npos);
  EXPECT_NE(out.find("[d1 .. d3]"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiSeriesTest, HandlesEmptyAndMismatchedInput) {
  EXPECT_NE(AsciiSeries("t", {}, {}).find("empty"), std::string::npos);
  EXPECT_NE(AsciiSeries("t", {"a"}, {1.0, 2.0}).find("empty"),
            std::string::npos);
}

TEST(AsciiSeriesTest, ConstantSeriesDoesNotDivideByZero) {
  const std::string out =
      AsciiSeries("flat", {"a", "b"}, {5.0, 5.0});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiSeriesTest, DownsamplesLongSeries) {
  std::vector<std::string> labels(1000, "d");
  std::vector<double> values(1000, 1.0);
  values[500] = 2.0;
  const std::string out = AsciiSeries("long", labels, values, 40);
  // Each grid row is at most ~40 characters of plot area.
  EXPECT_LT(out.size(), 2000u);
}

TEST(AsciiGroupedBarsTest, RendersAllGroupsAndSeries) {
  const std::string out = AsciiGroupedBars(
      "Contribution", {"w=1", "w=7"}, {"macro", "technical"},
      {{0.1, 0.2}, {0.7, 0.4}});
  EXPECT_NE(out.find("Contribution"), std::string::npos);
  EXPECT_NE(out.find("w=1"), std::string::npos);
  EXPECT_NE(out.find("w=7"), std::string::npos);
  EXPECT_NE(out.find("macro"), std::string::npos);
  EXPECT_NE(out.find("technical"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("0.700"), std::string::npos);
}

TEST(AsciiGroupedBarsTest, AllZeroValuesSafe) {
  const std::string out =
      AsciiGroupedBars("Zeros", {"g"}, {"s"}, {{0.0}});
  EXPECT_NE(out.find("0.000"), std::string::npos);
}

}  // namespace
}  // namespace fab::core
