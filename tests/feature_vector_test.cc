#include "core/feature_vector.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace fab::core {
namespace {

ml::Dataset MakeDataset(size_t rows, size_t n_signal, size_t n_noise,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(n_signal + n_noise,
                                        std::vector<double>(rows));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  std::vector<double> y(rows, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < n_signal; ++j) y[i] += cols[j][i];
    y[i] += 0.3 * rng.Normal();
  }
  ml::Dataset d;
  d.x = *ml::ColMatrix::FromColumns(std::move(cols));
  d.y = std::move(y);
  for (size_t j = 0; j < n_signal + n_noise; ++j) {
    d.feature_names.push_back((j < n_signal ? "signal" : "noise") +
                              std::to_string(j));
  }
  return d;
}

FeatureVectorOptions FastOptions() {
  FeatureVectorOptions options;
  options.rf.n_trees = 15;
  options.rf.max_depth = 6;
  options.rf.max_features = 0.5;
  options.shap_row_limit = 60;
  return options;
}

TEST(ShapScoresTest, SignalFeaturesScoreHigher) {
  const ml::Dataset d = MakeDataset(300, 3, 17, 3);
  const auto scores = ShapScores(d, FastOptions());
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 20u);
  double min_signal = 1e18;
  double max_noise = 0.0;
  for (size_t j = 0; j < 3; ++j) min_signal = std::min(min_signal, (*scores)[j]);
  for (size_t j = 3; j < 20; ++j) max_noise = std::max(max_noise, (*scores)[j]);
  EXPECT_GT(min_signal, max_noise);
}

TEST(FinalFeatureVectorTest, UnionOfTopK) {
  const ml::Dataset d = MakeDataset(300, 3, 17, 5);
  FraResult fra;
  fra.selected = {"signal0", "signal1", "noise5", "noise6"};
  fra.selected_scores = {4, 3, 2, 1};
  FeatureVectorOptions options = FastOptions();
  options.union_top_k = 3;
  const auto fvec = BuildFinalFeatureVector(d, fra, options);
  ASSERT_TRUE(fvec.ok());
  // FRA contributes its top 3; SHAP contributes its own top 3.
  std::set<std::string> result(fvec->features.begin(), fvec->features.end());
  EXPECT_TRUE(result.count("signal0"));
  EXPECT_TRUE(result.count("signal1"));
  EXPECT_TRUE(result.count("noise5"));
  // All three signals rank top in SHAP, so signal2 enters via the union.
  EXPECT_TRUE(result.count("signal2"));
  // No feature appears twice.
  EXPECT_EQ(result.size(), fvec->features.size());
  // Union size bounded by 2k.
  EXPECT_LE(fvec->features.size(), 6u);
}

TEST(FinalFeatureVectorTest, OverlapCountsFraInShapTop100) {
  const ml::Dataset d = MakeDataset(300, 3, 7, 7);
  FraResult fra;
  fra.selected = {"signal0", "signal1", "signal2"};
  fra.selected_scores = {3, 2, 1};
  const auto fvec = BuildFinalFeatureVector(d, fra, FastOptions());
  ASSERT_TRUE(fvec.ok());
  // Only 10 candidates, so SHAP's "top 100" is everything: full overlap.
  EXPECT_EQ(fvec->overlap_fra_shap_top100, 3u);
}

TEST(FinalFeatureVectorTest, ShapRankingCoversAllCandidates) {
  const ml::Dataset d = MakeDataset(200, 2, 6, 9);
  FraResult fra;
  fra.selected = {"signal0"};
  fra.selected_scores = {1};
  const auto fvec = BuildFinalFeatureVector(d, fra, FastOptions());
  ASSERT_TRUE(fvec.ok());
  EXPECT_EQ(fvec->shap_ranked.size(), d.num_features());
  EXPECT_EQ(fvec->fra_ranked, fra.selected);
}

}  // namespace
}  // namespace fab::core
