#include "table/column.h"

#include <gtest/gtest.h>

namespace fab::table {
namespace {

TEST(ColumnTest, AllNullConstruction) {
  Column c(4);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.null_count(), 4u);
  EXPECT_DOUBLE_EQ(c.null_fraction(), 1.0);
  for (size_t i = 0; i < 4; ++i) EXPECT_TRUE(c.is_null(i));
}

TEST(ColumnTest, FullyValidFromValues) {
  Column c(std::vector<double>{1, 2, 3});
  EXPECT_EQ(c.null_count(), 0u);
  EXPECT_DOUBLE_EQ(c.value(1), 2.0);
  EXPECT_DOUBLE_EQ(c.null_fraction(), 0.0);
}

TEST(ColumnTest, SetAndSetNull) {
  Column c(3);
  c.Set(1, 5.0);
  EXPECT_TRUE(c.is_valid(1));
  EXPECT_DOUBLE_EQ(c.value(1), 5.0);
  c.SetNull(1);
  EXPECT_TRUE(c.is_null(1));
}

TEST(ColumnTest, AppendMixed) {
  Column c;
  c.Append(1.0);
  c.AppendNull();
  c.Append(3.0);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_EQ(c.ValidValues(), (std::vector<double>{1.0, 3.0}));
}

TEST(ColumnTest, DistinctValidCount) {
  Column c(std::vector<double>{1, 2, 2, 3, 3, 3});
  EXPECT_EQ(c.distinct_valid_count(), 3u);
  c.SetNull(0);
  EXPECT_EQ(c.distinct_valid_count(), 2u);
}

TEST(ColumnTest, LongestFlatRun) {
  Column c(std::vector<double>{1, 1, 1, 2, 2, 1});
  EXPECT_EQ(c.longest_flat_run(), 3u);
}

TEST(ColumnTest, FlatRunBrokenByNull) {
  Column c(std::vector<double>{1, 1, 1, 1});
  c.SetNull(2);
  EXPECT_EQ(c.longest_flat_run(), 2u);
}

TEST(ColumnTest, FlatRunAllNullIsZero) {
  EXPECT_EQ(Column(5).longest_flat_run(), 0u);
}

TEST(ColumnTest, ToDenseFillsNulls) {
  Column c(3);
  c.Set(0, 7.0);
  EXPECT_EQ(c.ToDense(-1.0), (std::vector<double>{7.0, -1.0, -1.0}));
}

TEST(ColumnTest, SlicePreservesMask) {
  Column c(std::vector<double>{1, 2, 3, 4, 5});
  c.SetNull(2);
  Column s = c.Slice(1, 3);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.value(0), 2.0);
  EXPECT_TRUE(s.is_null(1));
  EXPECT_DOUBLE_EQ(s.value(2), 4.0);
}

TEST(ColumnTest, TakeGathersRows) {
  Column c(std::vector<double>{10, 20, 30});
  c.SetNull(1);
  Column t = c.Take({2, 0, 1, 2});
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t.value(0), 30.0);
  EXPECT_DOUBLE_EQ(t.value(1), 10.0);
  EXPECT_TRUE(t.is_null(2));
  EXPECT_DOUBLE_EQ(t.value(3), 30.0);
}

TEST(ColumnTest, EqualsExactly) {
  Column a(std::vector<double>{1, 2});
  Column b(std::vector<double>{1, 2});
  EXPECT_TRUE(a.EqualsExactly(b));
  b.SetNull(0);
  EXPECT_FALSE(a.EqualsExactly(b));
  Column c(std::vector<double>{1, 2, 3});
  EXPECT_FALSE(a.EqualsExactly(c));
  Column d(std::vector<double>{1, 9});
  EXPECT_FALSE(a.EqualsExactly(d));
}

TEST(ColumnTest, EqualsExactlyIgnoresValuesAtNullSlots) {
  Column a(2), b(2);
  a.Set(0, 1.0);
  b.Set(0, 1.0);
  // Slot 1 null in both; underlying values are unspecified but equal here.
  EXPECT_TRUE(a.EqualsExactly(b));
}

}  // namespace
}  // namespace fab::table
