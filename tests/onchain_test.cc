#include "sim/onchain_btc.h"
#include "sim/onchain_usdc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "sim/market_sim.h"

namespace fab::sim {
namespace {

/// Shared fixture: one small simulated market covering the USDC launch.
class OnChainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MarketSimConfig config;
    config.latent.start = Date(2017, 6, 1);
    config.latent.end = Date(2020, 6, 30);
    config.seed = 77;
    market_ =
        std::make_unique<SimulatedMarket>(std::move(SimulateMarket(config)).value());
  }
  static void TearDownTestSuite() { market_.reset(); }

  static std::unique_ptr<const SimulatedMarket> market_;
};

std::unique_ptr<const SimulatedMarket> OnChainTest::market_;

TEST_F(OnChainTest, BtcMetricsAllPresentAndPositive) {
  const char* kSpotChecks[] = {
      "SplyCur",      "RevAllTimeUSD", "CapRealUSD",   "HashRate",
      "AdrActCnt",    "market_cap",    "s2f_ratio",    "SER",
      "fish_pct",     "VelCur1yr",     "TxCnt",        "NVTAdj",
      "SplyAct1yr",   "SplyActEver",   "AdrBalNtv1Cnt"};
  for (const char* name : kSpotChecks) {
    ASSERT_TRUE(market_->metrics.HasColumn(name)) << name;
    const table::Column& c = **market_->metrics.GetColumn(name);
    for (size_t t = 0; t < c.size(); t += 37) {
      ASSERT_TRUE(c.is_valid(t)) << name;
      EXPECT_GT(c.value(t), 0.0) << name << " at row " << t;
    }
  }
}

TEST_F(OnChainTest, CountsDecreaseWithThreshold) {
  // More addresses hold >= 0.01 BTC than >= 1 BTC than >= 100 BTC.
  const table::Column& c001 = **market_->metrics.GetColumn("AdrBalNtv0.01Cnt");
  const table::Column& c1 = **market_->metrics.GetColumn("AdrBalNtv1Cnt");
  const table::Column& c100 = **market_->metrics.GetColumn("AdrBalNtv100Cnt");
  for (size_t t = 0; t < c1.size(); t += 53) {
    EXPECT_GT(c001.value(t), c1.value(t));
    EXPECT_GT(c1.value(t), c100.value(t));
  }
}

TEST_F(OnChainTest, SupplySharesDecreaseWithThreshold) {
  const table::Column& s1 = **market_->metrics.GetColumn("SplyAdrBalNtv1");
  const table::Column& s1k = **market_->metrics.GetColumn("SplyAdrBalNtv1K");
  const table::Column& cur = **market_->metrics.GetColumn("SplyCur");
  for (size_t t = 0; t < s1.size(); t += 53) {
    EXPECT_GT(s1.value(t), s1k.value(t));
    // Held supply cannot much exceed current supply (wobble/noise ~ a few %).
    EXPECT_LT(s1.value(t), 1.25 * cur.value(t));
  }
}

TEST_F(OnChainTest, RevAllTimeIsNonDecreasing) {
  const table::Column& rev = **market_->metrics.GetColumn("RevAllTimeUSD");
  for (size_t t = 1; t < rev.size(); ++t) {
    EXPECT_GE(rev.value(t), rev.value(t - 1) * 0.995);  // small obs noise
  }
  EXPECT_GT(rev.value(rev.size() - 1), rev.value(0));
}

TEST_F(OnChainTest, CohortPercentagesAreFractions) {
  for (const char* name : {"shrimps_pct", "fish_pct", "sharks_pct",
                           "whales_pct"}) {
    const table::Column& c = **market_->metrics.GetColumn(name);
    for (size_t t = 0; t < c.size(); t += 41) {
      EXPECT_GT(c.value(t), 0.0) << name;
      EXPECT_LT(c.value(t), 1.0) << name;
    }
  }
}

TEST_F(OnChainTest, UsdcNullBeforeLaunchValidAfter) {
  const int launch = market_->latent.FindDay(UsdcLaunchDate());
  ASSERT_GT(launch, 0);
  const table::Column& c = **market_->metrics.GetColumn("usdc_SplyCur");
  EXPECT_TRUE(c.is_null(static_cast<size_t>(launch - 1)));
  EXPECT_TRUE(c.is_valid(static_cast<size_t>(launch)));
  EXPECT_TRUE(c.is_valid(c.size() - 1));
}

TEST_F(OnChainTest, UsdcSupplyPositiveAndGrowsWithMarket) {
  const int launch = market_->latent.FindDay(UsdcLaunchDate());
  const table::Column& c = **market_->metrics.GetColumn("usdc_SplyCur");
  const double early = c.value(static_cast<size_t>(launch + 30));
  const double late = c.value(c.size() - 1);
  EXPECT_GT(early, 0.0);
  EXPECT_GT(late, early);  // adoption-era growth
}

TEST_F(OnChainTest, UsdcCountsDecreaseWithThreshold) {
  const table::Column& c1 = **market_->metrics.GetColumn("usdc_AdrBalNtv1Cnt");
  const table::Column& c1m =
      **market_->metrics.GetColumn("usdc_AdrBalNtv1MCnt");
  for (size_t t = c1.size() - 200; t < c1.size(); t += 31) {
    EXPECT_GT(c1.value(t), c1m.value(t));
  }
}

TEST_F(OnChainTest, CategoriesRegisteredCorrectly) {
  EXPECT_EQ(*market_->catalog.CategoryOf("SplyCur"),
            DataCategory::kOnChainBtc);
  EXPECT_EQ(*market_->catalog.CategoryOf("usdc_SplyCur"),
            DataCategory::kOnChainUsdc);
  EXPECT_GT(market_->catalog.CountInCategory(DataCategory::kOnChainBtc), 80u);
  EXPECT_GT(market_->catalog.CountInCategory(DataCategory::kOnChainUsdc), 50u);
}

TEST(WealthModelTest, CountAtLeastMonotoneAndCapped) {
  WealthModel w;
  w.num_addresses = 1e6;
  w.b_min = 1e-4;
  w.alpha = 0.5;
  EXPECT_DOUBLE_EQ(w.CountAtLeast(1e-5), 1e6);  // below b_min: everyone
  EXPECT_DOUBLE_EQ(w.CountAtLeast(w.b_min), 1e6);
  double prev = 1e18;
  for (double b : {0.001, 0.01, 0.1, 1.0, 10.0, 100.0}) {
    const double c = w.CountAtLeast(b);
    EXPECT_LT(c, prev);
    EXPECT_GT(c, 0.0);
    prev = c;
  }
}

TEST(WealthModelTest, SupplyShareBounds) {
  WealthModel w;
  w.b_scale = 2.0;
  w.gamma = 0.35;
  EXPECT_DOUBLE_EQ(w.SupplyShareAtLeast(0.0), 1.0);
  double prev = 1.0;
  for (double b : {0.1, 1.0, 10.0, 100.0, 1e4}) {
    const double s = w.SupplyShareAtLeast(b);
    EXPECT_LE(s, prev);
    EXPECT_GT(s, 0.0);
    prev = s;
  }
}

class WealthModelSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(WealthModelSweep, PercentileThresholdConsistency) {
  // The balance threshold that selects the top q of addresses should
  // indeed select ~q of them.
  const auto [alpha, q] = GetParam();
  WealthModel w;
  w.num_addresses = 1e7;
  w.alpha = alpha;
  const double b_top = w.b_min * std::pow(q, -1.0 / alpha);
  EXPECT_NEAR(w.CountAtLeast(b_top) / w.num_addresses, q, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaQ, WealthModelSweep,
    ::testing::Values(std::make_pair(0.4, 0.01), std::make_pair(0.55, 0.01),
                      std::make_pair(0.55, 0.10), std::make_pair(0.7, 0.05)));

}  // namespace
}  // namespace fab::sim
