#include "net/shard_router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/json.h"
#include "serve/registry.h"

namespace fab::net {
namespace {

namespace fs = std::filesystem;

/// Fixed-delay, fixed-value regressor: holds a shard's single worker
/// busy so queue-bound admission paths actually trigger.
class SlowRegressor : public ml::Regressor {
 public:
  explicit SlowRegressor(int delay_ms, double value)
      : delay_ms_(delay_ms), value_(value) {}

  Status Fit(const ml::ColMatrix&, const std::vector<double>&) override {
    return Status::OK();
  }
  double PredictOne(const ml::ColMatrix&, size_t) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return value_;
  }
  std::vector<double> Predict(const ml::ColMatrix& x) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return std::vector<double>(x.rows(), value_);
  }
  Status SetParam(const std::string&, double) override { return Status::OK(); }
  std::unique_ptr<ml::Regressor> CloneUnfitted() const override {
    return std::make_unique<SlowRegressor>(delay_ms_, value_);
  }
  std::vector<double> FeatureImportances() const override { return {}; }
  std::string name() const override { return "slow"; }

 private:
  int delay_ms_;
  double value_;
};

class ShardRouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("fab_shard_router_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
    registry_ = std::make_unique<serve::ModelRegistry>(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  std::string root_;
  std::unique_ptr<serve::ModelRegistry> registry_;
};

TEST(ShardHashTest, GoldenValuesArePinned) {
  // These constants ARE the routing contract: if any of them moves,
  // persisted layouts become lies. Bump kShardHashVersion instead.
  EXPECT_EQ(ShardHash({"2017", 7, "rf"}), 253020410545320144ULL);
  EXPECT_EQ(ShardHash({"2019", 21, "xgb"}), 12346744889219652645ULL);
  EXPECT_EQ(ShardHash({"2017", 1, "mlp"}), 6657700723888408669ULL);
  EXPECT_EQ(kShardHashVersion, 1);
}

TEST(ShardHashTest, ShardOfIsHashModuloShards) {
  const serve::ModelKey key{"2019", 21, "xgb"};
  EXPECT_EQ(ShardOf(key, 4), 12346744889219652645ULL % 4);
  EXPECT_EQ(ShardOf(key, 7), 12346744889219652645ULL % 7);
  EXPECT_EQ(ShardOf(key, 1), 0u);
}

TEST_F(ShardRouterTest, SameKeySameShardAcrossRestarts) {
  const std::vector<serve::ModelKey> keys = {
      {"2017", 1, "rf"},  {"2017", 7, "xgb"}, {"2017", 14, "mlp"},
      {"2019", 21, "rf"}, {"2019", 30, "xgb"}};
  std::vector<size_t> first_run;
  {
    Result<std::unique_ptr<ShardedRouter>> router =
        ShardedRouter::Create(registry_.get(), ShardedRouterOptions{});
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    for (const auto& key : keys) {
      first_run.push_back((*router)->ShardFor(key));
      EXPECT_EQ(first_run.back(), ShardOf(key, (*router)->num_shards()));
    }
  }
  // "Restart": a fresh router over the same registry root.
  Result<std::unique_ptr<ShardedRouter>> router =
      ShardedRouter::Create(registry_.get(), ShardedRouterOptions{});
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ((*router)->ShardFor(keys[i]), first_run[i]);
  }
  EXPECT_TRUE(fs::exists(ShardedRouter::LayoutPath(root_)));
}

TEST_F(ShardRouterTest, ShardCountChangeRejectedAtLoadTime) {
  ShardedRouterOptions options;
  options.num_shards = 4;
  {
    Result<std::unique_ptr<ShardedRouter>> router =
        ShardedRouter::Create(registry_.get(), options);
    ASSERT_TRUE(router.ok());
  }
  options.num_shards = 5;
  Result<std::unique_ptr<ShardedRouter>> rejected =
      ShardedRouter::Create(registry_.get(), options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.status().message().find("shard count change rejected"),
            std::string::npos);

  // Resharding is explicit: delete the layout file, then 5 shards load.
  fs::remove(ShardedRouter::LayoutPath(root_));
  EXPECT_TRUE(ShardedRouter::Create(registry_.get(), options).ok());
}

TEST_F(ShardRouterTest, HashVersionMismatchRejected) {
  std::ofstream out(ShardedRouter::LayoutPath(root_));
  out << "fab-shard-layout v1\nnum_shards 4\nhash_version 99\n";
  out.close();
  Result<std::unique_ptr<ShardedRouter>> router =
      ShardedRouter::Create(registry_.get(), ShardedRouterOptions{});
  ASSERT_FALSE(router.ok());
  EXPECT_EQ(router.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ShardRouterTest, MalformedLayoutIsIoError) {
  std::ofstream out(ShardedRouter::LayoutPath(root_));
  out << "not a layout file at all\n";
  out.close();
  Result<std::unique_ptr<ShardedRouter>> router =
      ShardedRouter::Create(registry_.get(), ShardedRouterOptions{});
  ASSERT_FALSE(router.ok());
  EXPECT_EQ(router.status().code(), StatusCode::kIoError);
}

TEST_F(ShardRouterTest, UnknownKeyIsNotFound) {
  Result<std::unique_ptr<ShardedRouter>> router =
      ShardedRouter::Create(registry_.get(), ShardedRouterOptions{});
  ASSERT_TRUE(router.ok());
  Status status = (*router)->Submit({"2031", 7, "rf"}, {1.0},
                                    [](Result<double>) {});
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ShardRouterTest, SaturatedShardShedsWhileOthersServe) {
  // Under 2 shards the FNV layout puts every "rf" key on shard 0 and
  // every "xgb" key on shard 1 — so a slow rf model saturates shard 0
  // without touching shard 1's queue.
  const serve::ModelKey slow_key{"2017", 7, "rf"};
  const serve::ModelKey fast_key{"2019", 21, "xgb"};
  ASSERT_EQ(ShardOf(slow_key, 2), 0u);
  ASSERT_EQ(ShardOf(fast_key, 2), 1u);
  ASSERT_TRUE(registry_
                  ->Put(slow_key,
                        std::make_unique<SlowRegressor>(100, 7.0))
                  .ok());
  ASSERT_TRUE(registry_
                  ->Put(fast_key, std::make_unique<SlowRegressor>(0, 3.5))
                  .ok());

  ShardedRouterOptions options;
  options.num_shards = 2;
  options.threads_per_shard = 1;
  options.max_batch = 1;
  options.max_shard_queue = 2;
  options.slo_queue_wait_us = 0.0;  // isolate the queue-full path
  Result<std::unique_ptr<ShardedRouter>> created =
      ShardedRouter::Create(registry_.get(), options);
  ASSERT_TRUE(created.ok());
  ShardedRouter& router = **created;

  std::atomic<int> slow_done{0};
  int admitted = 0;
  int shed_full = 0;
  for (int i = 0; i < 12; ++i) {
    Admission admission = Admission::kAdmitted;
    Status status = router.Submit(
        slow_key, {1.0},
        [&slow_done](Result<double>) { slow_done.fetch_add(1); },
        &admission);
    if (status.ok()) {
      EXPECT_EQ(admission, Admission::kAdmitted);
      ++admitted;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable);
      EXPECT_EQ(admission, Admission::kShedQueueFull);
      ++shed_full;
    }
  }
  EXPECT_GE(admitted, 1);
  EXPECT_GE(shed_full, 1) << "12 instant submits of 100ms work into a "
                             "2-slot queue must shed";
  EXPECT_GE(router.RetryAfterSeconds(0), 1);

  // Shard 1 is unaffected: every fast submit admits and serves.
  for (int i = 0; i < 4; ++i) {
    std::promise<Result<double>> promise;
    std::future<Result<double>> future = promise.get_future();
    Admission admission = Admission::kShedQueueFull;
    ASSERT_TRUE(router
                    .Submit(fast_key, {1.0},
                            [&promise](Result<double> r) {
                              promise.set_value(std::move(r));
                            },
                            &admission)
                    .ok());
    EXPECT_EQ(admission, Admission::kAdmitted);
    Result<double> result = future.get();
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(*result, 3.5);
  }

  // Statsz is valid JSON and reflects the shed counters.
  Result<JsonValue> statsz = ParseJson(router.StatszJson());
  ASSERT_TRUE(statsz.ok()) << statsz.status().ToString();
  EXPECT_DOUBLE_EQ(*statsz->GetNumber("num_shards"), 2.0);
  const JsonValue* shards = statsz->Find("shards");
  ASSERT_NE(shards, nullptr);
  ASSERT_EQ(shards->array().size(), 2u);
  EXPECT_GE(*shards->array()[0].GetNumber("shed_queue_full"),
            static_cast<double>(shed_full));
  EXPECT_GE(*shards->array()[1].GetNumber("admitted"), 4.0);

  router.Shutdown();  // drains the slow queue under its deadline
  EXPECT_EQ(slow_done.load(), admitted);  // every admitted callback fired
}

TEST_F(ShardRouterTest, QueueWaitSloShedsBeforeQueueFills) {
  const serve::ModelKey slow_key{"2017", 7, "rf"};
  ASSERT_TRUE(registry_
                  ->Put(slow_key,
                        std::make_unique<SlowRegressor>(100, 7.0))
                  .ok());

  ShardedRouterOptions options;
  options.num_shards = 2;
  options.threads_per_shard = 1;
  options.max_batch = 1;
  options.max_shard_queue = 1000;  // far from full: only the SLO can shed
  options.slo_queue_wait_us = 1.0;
  Result<std::unique_ptr<ShardedRouter>> created =
      ShardedRouter::Create(registry_.get(), options);
  ASSERT_TRUE(created.ok());
  ShardedRouter& router = **created;

  // Seed the shard's service-time EMA with one completed 100ms row.
  std::promise<Result<double>> first;
  std::future<Result<double>> first_done = first.get_future();
  ASSERT_TRUE(router
                  .Submit(slow_key, {1.0},
                          [&first](Result<double> r) {
                            first.set_value(std::move(r));
                          })
                  .ok());
  ASSERT_TRUE(first_done.get().ok());

  // With ~100000us per row on one thread, any queued request pushes the
  // predicted wait far over the 1us SLO — a burst must shed.
  std::atomic<int> done{0};
  int admitted = 0;
  int shed_slo = 0;
  for (int i = 0; i < 12; ++i) {
    Admission admission = Admission::kAdmitted;
    Status status = router.Submit(
        slow_key, {1.0},
        [&done](Result<double>) { done.fetch_add(1); }, &admission);
    if (status.ok()) {
      ++admitted;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kUnavailable);
      EXPECT_EQ(admission, Admission::kShedSlo);
      ++shed_slo;
    }
  }
  EXPECT_GE(admitted, 1);
  EXPECT_GE(shed_slo, 1);
  router.Shutdown();
  EXPECT_EQ(done.load(), admitted);
}

}  // namespace
}  // namespace fab::net
