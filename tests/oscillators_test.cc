#include "ta/oscillators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace fab::ta {
namespace {

std::vector<double> RandomWalk(size_t n, uint64_t seed, double drift = 0.0) {
  Rng rng(seed);
  std::vector<double> out(n);
  double p = 100.0;
  for (auto& v : out) {
    p *= std::exp(drift + 0.02 * rng.Normal());
    v = p;
  }
  return out;
}

TEST(RsiTest, PureUptrendSaturatesHigh) {
  std::vector<double> rising;
  for (int i = 0; i < 50; ++i) rising.push_back(100.0 + i);
  const table::Column rsi = Rsi(rising, 14);
  EXPECT_NEAR(rsi.value(49), 100.0, 1e-9);
}

TEST(RsiTest, PureDowntrendSaturatesLow) {
  std::vector<double> falling;
  for (int i = 0; i < 50; ++i) falling.push_back(100.0 - i);
  const table::Column rsi = Rsi(falling, 14);
  EXPECT_NEAR(rsi.value(49), 0.0, 1e-9);
}

TEST(RsiTest, FlatSeriesIsFifty) {
  const table::Column rsi = Rsi(std::vector<double>(30, 5.0), 14);
  EXPECT_DOUBLE_EQ(rsi.value(20), 50.0);
}

TEST(RsiTest, BoundedOnRandomWalk) {
  const table::Column rsi = Rsi(RandomWalk(500, 3), 14);
  for (size_t i = 0; i < rsi.size(); ++i) {
    if (rsi.is_null(i)) continue;
    EXPECT_GE(rsi.value(i), 0.0);
    EXPECT_LE(rsi.value(i), 100.0);
  }
}

TEST(RsiTest, WarmupIsWindowDays) {
  const table::Column rsi = Rsi(RandomWalk(50, 4), 14);
  for (size_t i = 0; i < 14; ++i) EXPECT_TRUE(rsi.is_null(i));
  EXPECT_TRUE(rsi.is_valid(14));
}

TEST(MacdTest, HistogramIsLineMinusSignal) {
  const std::vector<double> series = RandomWalk(300, 7);
  const MacdResult macd = Macd(series);
  for (size_t i = 0; i < series.size(); ++i) {
    if (macd.histogram.is_null(i)) continue;
    EXPECT_NEAR(macd.histogram.value(i),
                macd.line.value(i) - macd.signal.value(i), 1e-9);
  }
}

TEST(MacdTest, LinePositiveInSustainedUptrend) {
  const std::vector<double> series = RandomWalk(300, 8, 0.01);
  const MacdResult macd = Macd(series);
  EXPECT_GT(macd.line.value(series.size() - 1), 0.0);
}

TEST(MacdTest, FlatSeriesHasZeroLine) {
  const MacdResult macd = Macd(std::vector<double>(100, 42.0));
  for (size_t i = 0; i < 100; ++i) {
    if (macd.line.is_valid(i)) EXPECT_NEAR(macd.line.value(i), 0.0, 1e-9);
  }
}

TEST(RocTest, KnownValue) {
  const table::Column roc = Roc({100, 100, 110}, 2);
  EXPECT_TRUE(roc.is_null(1));
  EXPECT_NEAR(roc.value(2), 10.0, 1e-12);
}

TEST(MomentumTest, KnownValue) {
  const table::Column mom = Momentum({5, 6, 9}, 2);
  EXPECT_NEAR(mom.value(2), 4.0, 1e-12);
}

TEST(StochasticTest, BoundsAndExtremes) {
  const std::vector<double> close = RandomWalk(200, 9);
  std::vector<double> high(close), low(close);
  for (size_t i = 0; i < close.size(); ++i) {
    high[i] *= 1.01;
    low[i] *= 0.99;
  }
  const StochasticResult st = Stochastic(high, low, close, 14, 3);
  for (size_t i = 0; i < close.size(); ++i) {
    if (st.percent_k.is_valid(i)) {
      EXPECT_GE(st.percent_k.value(i), 0.0);
      EXPECT_LE(st.percent_k.value(i), 100.0);
    }
    if (st.percent_d.is_valid(i)) {
      EXPECT_GE(st.percent_d.value(i), 0.0);
      EXPECT_LE(st.percent_d.value(i), 100.0);
    }
  }
}

TEST(StochasticTest, CloseAtRollingHighGivesHundred) {
  std::vector<double> rising;
  for (int i = 0; i < 40; ++i) rising.push_back(10.0 + i);
  const StochasticResult st = Stochastic(rising, rising, rising, 14, 3);
  EXPECT_NEAR(st.percent_k.value(39), 100.0, 1e-9);
}

TEST(WilliamsRTest, BoundedAndMirrorsStochastic) {
  const std::vector<double> close = RandomWalk(200, 11);
  std::vector<double> high(close), low(close);
  for (size_t i = 0; i < close.size(); ++i) {
    high[i] *= 1.02;
    low[i] *= 0.98;
  }
  const table::Column wr = WilliamsR(high, low, close, 14);
  const StochasticResult st = Stochastic(high, low, close, 14, 3);
  for (size_t i = 0; i < close.size(); ++i) {
    if (wr.is_null(i)) continue;
    EXPECT_GE(wr.value(i), -100.0);
    EXPECT_LE(wr.value(i), 0.0);
    // %R = %K - 100.
    if (st.percent_k.is_valid(i)) {
      EXPECT_NEAR(wr.value(i), st.percent_k.value(i) - 100.0, 1e-9);
    }
  }
}

TEST(CciTest, FlatSeriesIsZero) {
  const std::vector<double> flat(50, 10.0);
  const table::Column cci = Cci(flat, flat, flat, 20);
  for (size_t i = 19; i < 50; ++i) EXPECT_DOUBLE_EQ(cci.value(i), 0.0);
}

TEST(CciTest, SpikesOnBreakout) {
  std::vector<double> series(60, 10.0);
  series.back() = 15.0;  // breakout above a flat base
  const table::Column cci = Cci(series, series, series, 20);
  EXPECT_GT(cci.value(59), 100.0);
}

class OscillatorSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OscillatorSeedSweep, RsiBoundsHoldAcrossSeeds) {
  const table::Column rsi = Rsi(RandomWalk(400, GetParam()), 14);
  for (size_t i = 14; i < 400; ++i) {
    EXPECT_GE(rsi.value(i), 0.0);
    EXPECT_LE(rsi.value(i), 100.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OscillatorSeedSweep,
                         ::testing::Values(1, 5, 9, 13));

}  // namespace
}  // namespace fab::ta
