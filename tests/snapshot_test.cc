#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "util/random.h"

namespace fab::serve {
namespace {

ml::ColMatrix MakeMatrix(size_t n, size_t f, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  return *ml::ColMatrix::FromColumns(std::move(cols));
}

std::vector<double> MakeTarget(const ml::ColMatrix& x, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    y[i] = 2.0 * x.at(i, 0) - x.at(i, 1) + 0.3 * rng.Normal();
  }
  return y;
}

std::string TempDir() {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fab_snapshot_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Round-trips `model` through the codec and asserts bitwise-identical
/// predictions on a held-out matrix.
void ExpectExactRoundTrip(const ml::Regressor& model,
                          const ml::ColMatrix& held_out,
                          const std::string& path) {
  ASSERT_TRUE(SnapshotCodec::Save(model, path).ok());
  auto loaded = SnapshotCodec::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), model.name());
  const std::vector<double> want = model.Predict(held_out);
  const std::vector<double> got = (*loaded)->Predict(held_out);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    // EXPECT_EQ on doubles: bitwise-identical is the contract, not "close".
    EXPECT_EQ(want[i], got[i]) << "row " << i;
  }
  // Per-row path must round-trip exactly too.
  for (size_t i = 0; i < held_out.rows(); ++i) {
    EXPECT_EQ(model.PredictOne(held_out, i), (*loaded)->PredictOne(held_out, i));
  }
}

TEST(SnapshotTest, RandomForestRoundTripIsBitwiseExact) {
  const ml::ColMatrix train = MakeMatrix(300, 8, 1);
  const ml::ColMatrix held_out = MakeMatrix(64, 8, 2);
  ml::ForestParams params;
  params.n_trees = 20;
  params.max_depth = 6;
  ml::RandomForestRegressor rf(params);
  ASSERT_TRUE(rf.Fit(train, MakeTarget(train, 3)).ok());
  ExpectExactRoundTrip(rf, held_out, TempDir() + "/rf.fabsnap");
}

TEST(SnapshotTest, GbdtRoundTripIsBitwiseExact) {
  const ml::ColMatrix train = MakeMatrix(300, 8, 4);
  const ml::ColMatrix held_out = MakeMatrix(64, 8, 5);
  ml::GbdtParams params;
  params.n_rounds = 25;
  params.max_depth = 4;
  ml::GbdtRegressor gbdt(params);
  ASSERT_TRUE(gbdt.Fit(train, MakeTarget(train, 6)).ok());
  ExpectExactRoundTrip(gbdt, held_out, TempDir() + "/xgb.fabsnap");
}

TEST(SnapshotTest, MlpRoundTripIsBitwiseExact) {
  const ml::ColMatrix train = MakeMatrix(200, 6, 7);
  const ml::ColMatrix held_out = MakeMatrix(64, 6, 8);
  ml::MlpParams params;
  params.hidden = {16, 8};
  params.epochs = 15;
  ml::MlpRegressor mlp(params);
  ASSERT_TRUE(mlp.Fit(train, MakeTarget(train, 9)).ok());
  ExpectExactRoundTrip(mlp, held_out, TempDir() + "/mlp.fabsnap");
}

TEST(SnapshotTest, RoundTripPreservesHyperparameters) {
  const ml::ColMatrix train = MakeMatrix(120, 4, 10);
  ml::GbdtParams params;
  params.n_rounds = 10;
  params.learning_rate = 0.07;
  params.lambda = 2.5;
  params.seed = 12345;
  ml::GbdtRegressor gbdt(params);
  ASSERT_TRUE(gbdt.Fit(train, MakeTarget(train, 11)).ok());
  auto encoded = SnapshotCodec::Encode(gbdt);
  ASSERT_TRUE(encoded.ok());
  auto decoded = SnapshotCodec::Decode(*encoded);
  ASSERT_TRUE(decoded.ok());
  const auto* loaded = dynamic_cast<const ml::GbdtRegressor*>(decoded->get());
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->params().n_rounds, 10);
  EXPECT_EQ(loaded->params().learning_rate, 0.07);
  EXPECT_EQ(loaded->params().lambda, 2.5);
  EXPECT_EQ(loaded->params().seed, 12345u);
  EXPECT_EQ(loaded->base_score(), gbdt.base_score());
  EXPECT_EQ(loaded->num_features(), 4u);
}

TEST(SnapshotTest, RejectsCorruptedHeader) {
  const ml::ColMatrix train = MakeMatrix(120, 4, 12);
  ml::ForestParams params;
  params.n_trees = 5;
  ml::RandomForestRegressor rf(params);
  ASSERT_TRUE(rf.Fit(train, MakeTarget(train, 13)).ok());
  auto encoded = SnapshotCodec::Encode(rf);
  ASSERT_TRUE(encoded.ok());

  // Bad magic.
  std::string bad_magic = *encoded;
  bad_magic[0] = 'X';
  EXPECT_FALSE(SnapshotCodec::Decode(bad_magic).ok());

  // Unsupported format version.
  std::string bad_version = *encoded;
  bad_version[8] = static_cast<char>(99);
  EXPECT_FALSE(SnapshotCodec::Decode(bad_version).ok());

  // Unknown model kind.
  std::string bad_kind = *encoded;
  bad_kind[12] = static_cast<char>(7);
  EXPECT_FALSE(SnapshotCodec::Decode(bad_kind).ok());

  // Truncations at every prefix of the header and a mid-payload cut.
  for (size_t len : {0ul, 4ul, 8ul, 12ul, 15ul, encoded->size() / 2}) {
    EXPECT_FALSE(SnapshotCodec::Decode(encoded->substr(0, len)).ok())
        << "prefix " << len;
  }

  // Empty / garbage files through the Load path.
  const std::string dir = TempDir();
  const std::string garbage_path = dir + "/garbage.fabsnap";
  std::ofstream(garbage_path, std::ios::binary) << "not a snapshot at all";
  EXPECT_FALSE(SnapshotCodec::Load(garbage_path).ok());
  EXPECT_FALSE(SnapshotCodec::Load(dir + "/missing.fabsnap").ok());
}

TEST(SnapshotTest, ProbeReportsKind) {
  const ml::ColMatrix train = MakeMatrix(120, 4, 14);
  ml::ForestParams params;
  params.n_trees = 3;
  ml::RandomForestRegressor rf(params);
  ASSERT_TRUE(rf.Fit(train, MakeTarget(train, 15)).ok());
  const std::string path = TempDir() + "/probe.fabsnap";
  ASSERT_TRUE(SnapshotCodec::Save(rf, path).ok());
  auto info = SnapshotCodec::Probe(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->kind, ModelKind::kRandomForest);
  EXPECT_EQ(info->version, SnapshotCodec::kFormatVersion);
}

}  // namespace
}  // namespace fab::serve
