#include "core/dataset_builder.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/crypto100.h"

namespace fab::core {
namespace {

/// One shared small market (full horizon needed for both study periods).
class DatasetBuilderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::MarketSimConfig config;
    config.seed = 99;
    market_ = std::make_unique<sim::SimulatedMarket>(
        std::move(sim::SimulateMarket(config)).value());
    ASSERT_TRUE(AddTechnicalIndicators(market_.get()).ok());
  }
  static void TearDownTestSuite() { market_.reset(); }
  static std::unique_ptr<sim::SimulatedMarket> market_;
};

std::unique_ptr<sim::SimulatedMarket> DatasetBuilderTest::market_;

TEST_F(DatasetBuilderTest, PeriodMetadata) {
  EXPECT_EQ(PeriodStart(StudyPeriod::k2017), Date(2017, 1, 1));
  EXPECT_EQ(PeriodStart(StudyPeriod::k2019), Date(2019, 1, 1));
  EXPECT_EQ(PeriodEnd(), Date(2023, 6, 30));
  EXPECT_STREQ(PeriodName(StudyPeriod::k2017), "2017");
  EXPECT_EQ(PredictionWindows(), (std::vector<int>{1, 7, 30, 90, 180}));
}

TEST_F(DatasetBuilderTest, TechnicalIndicatorsRegistered) {
  for (const char* name :
       {"EMA100_market-cap", "EMA200_close-price", "SMA_20_close-price",
        "EMA200_volume", "RSI14", "MACD_line", "BB_upper", "ATR14", "OBV",
        "STOCH_K", "WILLR14", "CCI20", "RVOL30", "DRAWDOWN"}) {
    ASSERT_TRUE(market_->metrics.HasColumn(name)) << name;
    EXPECT_EQ(*market_->catalog.CategoryOf(name),
              sim::DataCategory::kTechnical)
        << name;
  }
  EXPECT_GT(market_->catalog.CountInCategory(sim::DataCategory::kTechnical),
            60u);
}

TEST_F(DatasetBuilderTest, TechnicalIndicatorsAreIdempotentGuarded) {
  // A second derivation attempt must fail loudly, not duplicate columns.
  EXPECT_FALSE(AddTechnicalIndicators(market_.get()).ok());
}

TEST_F(DatasetBuilderTest, RejectsBadWindow) {
  ScenarioOptions options;
  EXPECT_FALSE(
      BuildScenarioDataset(*market_, StudyPeriod::k2017, 0, options).ok());
}

TEST_F(DatasetBuilderTest, Scenario2017ExcludesUsdc) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2017, 7, options);
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->CandidatesInCategory(sim::DataCategory::kOnChainUsdc),
            0u);
  for (const auto& name : scenario->data.feature_names) {
    EXPECT_NE(name.rfind("usdc_", 0), 0u) << name;
  }
}

TEST_F(DatasetBuilderTest, Scenario2019IncludesUsdc) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2019, 7, options);
  ASSERT_TRUE(scenario.ok());
  EXPECT_GT(scenario->CandidatesInCategory(sim::DataCategory::kOnChainUsdc),
            30u);
}

TEST_F(DatasetBuilderTest, TargetIsCrypto100ShiftedByWindow) {
  ScenarioOptions options;
  const int window = 30;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2019, window, options);
  ASSERT_TRUE(scenario.ok());
  const auto index = Crypto100Series(market_->top100_mcap_sum);
  for (size_t r = 0; r < scenario->data.num_rows(); r += 101) {
    const int day = market_->latent.FindDay(scenario->dates[r]);
    ASSERT_GE(day, 0);
    EXPECT_DOUBLE_EQ(
        scenario->data.y[r],
        (*index)[static_cast<size_t>(day) + static_cast<size_t>(window)]);
  }
}

TEST_F(DatasetBuilderTest, RowsEndEarlyEnoughForTarget) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2019, 180, options);
  ASSERT_TRUE(scenario.ok());
  // The last retained row needs a target 180 days ahead within the sim.
  EXPECT_LE(scenario->dates.back().AddDays(180), market_->latent.dates.back());
}

TEST_F(DatasetBuilderTest, NoMissingValuesSurvive) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2017, 1, options);
  ASSERT_TRUE(scenario.ok());
  // Everything was densified; sizes are consistent.
  EXPECT_EQ(scenario->data.x.rows(), scenario->data.y.size());
  EXPECT_EQ(scenario->data.x.cols(), scenario->data.feature_names.size());
  EXPECT_EQ(scenario->categories.size(), scenario->data.feature_names.size());
  EXPECT_EQ(scenario->dates.size(), scenario->data.num_rows());
}

TEST_F(DatasetBuilderTest, LongerWindowMeansFewerRows) {
  ScenarioOptions options;
  const auto w1 = BuildScenarioDataset(*market_, StudyPeriod::k2019, 1, options);
  const auto w180 =
      BuildScenarioDataset(*market_, StudyPeriod::k2019, 180, options);
  EXPECT_GT(w1->data.num_rows(), w180->data.num_rows());
}

TEST_F(DatasetBuilderTest, CategoryHelpersConsistent) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2019, 7, options);
  size_t total = 0;
  for (sim::DataCategory c : sim::AllCategories()) {
    const auto positions = scenario->FeaturePositionsInCategory(c);
    EXPECT_EQ(positions.size(), scenario->CandidatesInCategory(c));
    for (int p : positions) {
      EXPECT_EQ(scenario->categories[static_cast<size_t>(p)], c);
    }
    total += positions.size();
  }
  EXPECT_EQ(total, scenario->data.num_features());
}

TEST_F(DatasetBuilderTest, DatesStrictlyIncreasing) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2017, 7, options);
  for (size_t r = 1; r < scenario->dates.size(); ++r) {
    EXPECT_LT(scenario->dates[r - 1], scenario->dates[r]);
  }
  EXPECT_GE(scenario->dates.front(), PeriodStart(StudyPeriod::k2017));
}

}  // namespace
}  // namespace fab::core
