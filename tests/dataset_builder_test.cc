#include "core/dataset_builder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/crypto100.h"
#include "ta/ta.h"

namespace fab::core {
namespace {

/// One shared small market (full horizon needed for both study periods).
class DatasetBuilderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::MarketSimConfig config;
    config.seed = 99;
    market_ = std::make_unique<sim::SimulatedMarket>(
        std::move(sim::SimulateMarket(config)).value());
    ASSERT_TRUE(AddTechnicalIndicators(market_.get()).ok());
  }
  static void TearDownTestSuite() { market_.reset(); }
  static std::unique_ptr<sim::SimulatedMarket> market_;
};

std::unique_ptr<sim::SimulatedMarket> DatasetBuilderTest::market_;

TEST_F(DatasetBuilderTest, PeriodMetadata) {
  EXPECT_EQ(PeriodStart(StudyPeriod::k2017), Date(2017, 1, 1));
  EXPECT_EQ(PeriodStart(StudyPeriod::k2019), Date(2019, 1, 1));
  EXPECT_EQ(PeriodEnd(), Date(2023, 6, 30));
  EXPECT_STREQ(PeriodName(StudyPeriod::k2017), "2017");
  EXPECT_EQ(PredictionWindows(), (std::vector<int>{1, 7, 30, 90, 180}));
}

TEST_F(DatasetBuilderTest, TechnicalIndicatorsRegistered) {
  for (const char* name :
       {"EMA100_market-cap", "EMA200_close-price", "SMA_20_close-price",
        "EMA200_volume", "RSI14", "MACD_line", "BB_upper", "ATR14", "OBV",
        "STOCH_K", "WILLR14", "CCI20", "RVOL30", "DRAWDOWN"}) {
    ASSERT_TRUE(market_->metrics.HasColumn(name)) << name;
    EXPECT_EQ(*market_->catalog.CategoryOf(name),
              sim::DataCategory::kTechnical)
        << name;
  }
  EXPECT_GT(market_->catalog.CountInCategory(sim::DataCategory::kTechnical),
            60u);
}

TEST_F(DatasetBuilderTest, TechnicalIndicatorsAreIdempotentGuarded) {
  // A second derivation attempt must fail loudly, not duplicate columns.
  EXPECT_FALSE(AddTechnicalIndicators(market_.get()).ok());
}

TEST_F(DatasetBuilderTest, RejectsBadWindow) {
  ScenarioOptions options;
  EXPECT_FALSE(
      BuildScenarioDataset(*market_, StudyPeriod::k2017, 0, options).ok());
}

TEST_F(DatasetBuilderTest, Scenario2017ExcludesUsdc) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2017, 7, options);
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->CandidatesInCategory(sim::DataCategory::kOnChainUsdc),
            0u);
  for (const auto& name : scenario->data.feature_names) {
    EXPECT_NE(name.rfind("usdc_", 0), 0u) << name;
  }
}

TEST_F(DatasetBuilderTest, Scenario2019IncludesUsdc) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2019, 7, options);
  ASSERT_TRUE(scenario.ok());
  EXPECT_GT(scenario->CandidatesInCategory(sim::DataCategory::kOnChainUsdc),
            30u);
}

TEST_F(DatasetBuilderTest, TargetIsCrypto100ShiftedByWindow) {
  ScenarioOptions options;
  const int window = 30;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2019, window, options);
  ASSERT_TRUE(scenario.ok());
  const auto index = Crypto100Series(market_->top100_mcap_sum);
  for (size_t r = 0; r < scenario->data.num_rows(); r += 101) {
    const int day = market_->latent.FindDay(scenario->dates[r]);
    ASSERT_GE(day, 0);
    EXPECT_DOUBLE_EQ(
        scenario->data.y[r],
        (*index)[static_cast<size_t>(day) + static_cast<size_t>(window)]);
  }
}

TEST_F(DatasetBuilderTest, RowsEndEarlyEnoughForTarget) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2019, 180, options);
  ASSERT_TRUE(scenario.ok());
  // The last retained row needs a target 180 days ahead within the sim.
  EXPECT_LE(scenario->dates.back().AddDays(180), market_->latent.dates.back());
}

TEST_F(DatasetBuilderTest, NoMissingValuesSurvive) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2017, 1, options);
  ASSERT_TRUE(scenario.ok());
  // Everything was densified; sizes are consistent.
  EXPECT_EQ(scenario->data.x.rows(), scenario->data.y.size());
  EXPECT_EQ(scenario->data.x.cols(), scenario->data.feature_names.size());
  EXPECT_EQ(scenario->categories.size(), scenario->data.feature_names.size());
  EXPECT_EQ(scenario->dates.size(), scenario->data.num_rows());
}

TEST_F(DatasetBuilderTest, LongerWindowMeansFewerRows) {
  ScenarioOptions options;
  const auto w1 = BuildScenarioDataset(*market_, StudyPeriod::k2019, 1, options);
  const auto w180 =
      BuildScenarioDataset(*market_, StudyPeriod::k2019, 180, options);
  EXPECT_GT(w1->data.num_rows(), w180->data.num_rows());
}

TEST_F(DatasetBuilderTest, CategoryHelpersConsistent) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2019, 7, options);
  size_t total = 0;
  for (sim::DataCategory c : sim::AllCategories()) {
    const auto positions = scenario->FeaturePositionsInCategory(c);
    EXPECT_EQ(positions.size(), scenario->CandidatesInCategory(c));
    for (int p : positions) {
      EXPECT_EQ(scenario->categories[static_cast<size_t>(p)], c);
    }
    total += positions.size();
  }
  EXPECT_EQ(total, scenario->data.num_features());
}

/// Every valid cell of `col` must hold a finite value (nulls are fine —
/// cleaning drops them; NaN/Inf in a *valid* cell would poison models).
void ExpectFiniteOrNull(const table::Column& col, const std::string& label) {
  for (size_t i = 0; i < col.size(); ++i) {
    if (col.is_valid(i)) {
      EXPECT_TRUE(std::isfinite(col.value(i)))
          << label << " at row " << i << " = " << col.value(i);
    }
  }
}

TEST_F(DatasetBuilderTest, IndicatorKernelsSurviveDegenerateSeries) {
  // The exchange-outage stress regime produces exactly this shape: a
  // frozen price with zero traded volume. Every kernel the builder
  // registers must yield finite-or-null, never NaN/Inf, on it.
  const size_t n = 250;
  const std::vector<double> close(n, 25000.0);
  const std::vector<double> high(n, 25000.0);
  const std::vector<double> low(n, 25000.0);
  const std::vector<double> volume(n, 0.0);

  ExpectFiniteOrNull(ta::Sma(close, 20), "SMA flat");
  ExpectFiniteOrNull(ta::Ema(close, 20), "EMA flat");
  ExpectFiniteOrNull(ta::Rsi(close, 14), "RSI flat");
  {
    const ta::MacdResult macd = ta::Macd(close);
    ExpectFiniteOrNull(macd.line, "MACD line flat");
    ExpectFiniteOrNull(macd.signal, "MACD signal flat");
    ExpectFiniteOrNull(macd.histogram, "MACD hist flat");
  }
  {
    const ta::BollingerResult boll = ta::Bollinger(close, 20);
    ExpectFiniteOrNull(boll.bandwidth, "BB bandwidth flat");
    // Zero-width bands carry no %B; the cell must be null, not 0/0.
    ExpectFiniteOrNull(boll.percent_b, "BB %B flat");
    EXPECT_TRUE(boll.percent_b.is_null(100));
  }
  ExpectFiniteOrNull(ta::Atr(high, low, close, 14), "ATR flat");
  ExpectFiniteOrNull(ta::Roc(close, 7), "ROC flat");
  ExpectFiniteOrNull(ta::Stochastic(high, low, close, 14, 3).percent_k,
                     "STOCH flat");
  ExpectFiniteOrNull(ta::WilliamsR(high, low, close, 14), "WILLR flat");
  ExpectFiniteOrNull(ta::Cci(high, low, close, 20), "CCI flat");
  ExpectFiniteOrNull(ta::Obv(close, volume), "OBV zero-volume");
  ExpectFiniteOrNull(ta::ChaikinMoneyFlow(high, low, close, volume, 20),
                     "CMF zero-volume");
  ExpectFiniteOrNull(ta::RealizedVolatility(close, 30), "RVOL flat");
  ExpectFiniteOrNull(ta::Drawdown(close), "DRAWDOWN flat");

  // A series that touches zero must not divide through it.
  std::vector<double> zeroed(n, 10.0);
  zeroed[50] = 0.0;
  ExpectFiniteOrNull(ta::Roc(zeroed, 7), "ROC through zero");
  ExpectFiniteOrNull(ta::RealizedVolatility(zeroed, 30), "RVOL through zero");
  ExpectFiniteOrNull(ta::Drawdown(zeroed), "DRAWDOWN through zero");
}

TEST_F(DatasetBuilderTest, VwapWithZeroVolumeWindowIsNullNotSentinel) {
  const size_t n = 60;
  std::vector<double> price(n, 100.0);
  std::vector<double> volume(n, 50.0);
  for (size_t i = 20; i < 40; ++i) volume[i] = 0.0;  // exchange outage
  const table::Column vwap = ta::RollingVwap(price, price, price, volume, 10);
  ExpectFiniteOrNull(vwap, "VWAP outage");
  // Windows fully inside the outage have no traded volume: null, not a
  // price of $0.
  EXPECT_TRUE(vwap.is_null(35));
  EXPECT_DOUBLE_EQ(vwap.value(15), 100.0);
  EXPECT_DOUBLE_EQ(vwap.value(55), 100.0);
}

TEST_F(DatasetBuilderTest, OutageStressedMarketBuildsFiniteDataset) {
  sim::MarketSimConfig config;
  config.seed = 99;
  config.stress.outage.enabled = true;
  config.stress.outage.duration_days = 7;
  auto stressed = sim::SimulateMarket(config);
  ASSERT_TRUE(stressed.ok());
  ASSERT_TRUE(AddTechnicalIndicators(&*stressed).ok());
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*stressed, StudyPeriod::k2019, 7, options);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  for (size_t c = 0; c < scenario->data.num_features(); ++c) {
    const std::vector<double>& col = scenario->data.x.column(c);
    for (size_t r = 0; r < col.size(); ++r) {
      ASSERT_TRUE(std::isfinite(col[r]))
          << scenario->data.feature_names[c] << " row " << r;
    }
  }
  for (double y : scenario->data.y) ASSERT_TRUE(std::isfinite(y));
}

TEST_F(DatasetBuilderTest, DatesStrictlyIncreasing) {
  ScenarioOptions options;
  const auto scenario =
      BuildScenarioDataset(*market_, StudyPeriod::k2017, 7, options);
  for (size_t r = 1; r < scenario->dates.size(); ++r) {
    EXPECT_LT(scenario->dates[r - 1], scenario->dates[r]);
  }
  EXPECT_GE(scenario->dates.front(), PeriodStart(StudyPeriod::k2017));
}

}  // namespace
}  // namespace fab::core
