#include "util/string_util.h"

#include <gtest/gtest.h>

namespace fab {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyFieldsPreserved) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, JoinsWithDelimiter) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(SplitJoinTest, RoundTrip) {
  const std::string s = "x,y,,z";
  EXPECT_EQ(Join(Split(s, ','), ","), s);
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello "), "hello");
  EXPECT_EQ(Trim("\t\nhi\r\n"), "hi");
  EXPECT_EQ(Trim("nothing"), "nothing");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerTest, LowersAscii) {
  EXPECT_EQ(ToLower("HeLLo123"), "hello123");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("usdc_SplyCur", "usdc_"));
  EXPECT_FALSE(StartsWith("SplyCur", "usdc_"));
  EXPECT_TRUE(EndsWith("EMA20_close", "_close"));
  EXPECT_FALSE(EndsWith("EMA20_close", "_volume"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace fab
