#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace fab::util {
namespace {

TEST(ResolveThreadsTest, PositivePassesThrough) {
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(2), 2);
  EXPECT_EQ(ResolveThreads(64), 64);
}

TEST(ResolveThreadsTest, ZeroAndNegativeMeanHardwareConcurrency) {
  const int resolved_zero = ResolveThreads(0);
  EXPECT_GE(resolved_zero, 1);
  // Negative requests follow the same "auto" semantics as zero.
  EXPECT_EQ(ResolveThreads(-1), resolved_zero);
  EXPECT_EQ(ResolveThreads(-100), resolved_zero);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0) {
    EXPECT_EQ(resolved_zero, hw);
  }
}

TEST(ThreadPoolTest, ConstructsAndShutsDownCleanly) {
  for (int n : {1, 2, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }
  // Destruction with queued work drains before joining.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](size_t i) {
                         ran.fetch_add(1);
                         if (i == 3) throw std::invalid_argument("boom");
                       }),
      std::invalid_argument);
  // The throw aborts only the remainder of its own chunk; every other
  // chunk completes before the exception is rethrown.
  EXPECT_GE(ran.load(), 76);
  EXPECT_LE(ran.load(), 100);
  // The pool survives a throwing ParallelFor.
  std::vector<int> out(10, 0);
  pool.ParallelFor(0, out.size(), [&](size_t i) { out[i] = 1; });
  for (int v : out) EXPECT_EQ(v, 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (int n : {1, 2, 8}) {
    ThreadPool pool(n);
    std::vector<int> hits(1000, 0);
    pool.ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, ParallelForResultsOrderedByIndex) {
  // Index-owned slots assemble in range order regardless of which worker
  // ran which chunk — the determinism contract every caller relies on.
  ThreadPool pool(8);
  std::vector<size_t> out(512, 0);
  pool.ParallelFor(0, out.size(), [&](size_t i) { out[i] = i * 3 + 1; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * 3 + 1);
}

TEST(ThreadPoolTest, ParallelForHonorsMaxParallelAndEmptyRange) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // max_parallel = 1 runs serially inline on the caller.
  std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(
      0, 10,
      [&](size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      /*max_parallel=*/1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::vector<int> sums(8, 0);
  pool.ParallelFor(0, sums.size(), [&](size_t i) {
    // On a worker thread the nested call executes inline; on the
    // caller-run chunk it re-enters the pool. Either way it completes
    // with full coverage and no deadlock.
    std::vector<int> inner(100, 0);
    pool.ParallelFor(0, inner.size(),
                     [&](size_t j) { inner[j] = static_cast<int>(j); });
    sums[i] = std::accumulate(inner.begin(), inner.end(), 0);
  });
  for (int s : sums) EXPECT_EQ(s, 4950);
}

TEST(ThreadPoolTest, StressTenThousandTinyTasks) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  std::vector<std::future<void>> futures;
  futures.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    futures.push_back(pool.Submit([&total, i] { total.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(total.load(), 10000L * 9999L / 2);
}

TEST(SharedPoolTest, ResizeTakesEffect) {
  SetSharedPoolThreads(3);
  EXPECT_EQ(SharedPool()->num_threads(), 3);
  SetSharedPoolThreads(1);
  EXPECT_EQ(SharedPool()->num_threads(), 1);
  SetSharedPoolThreads(0);
  EXPECT_EQ(SharedPool()->num_threads(), ResolveThreads(0));
}

TEST(SharedPoolTest, HandleOutlivesResize) {
  // Regression for the guarded-state escape fixed in this layer:
  // SharedPool() used to return a ThreadPool& into the guarded singleton
  // slot, so a concurrent SetSharedPoolThreads destroyed the pool out
  // from under the reference. Now callers get a shared_ptr copied under
  // the lock; the retired pool stays alive until its last holder lets go.
  SetSharedPoolThreads(2);
  std::shared_ptr<ThreadPool> held = SharedPool();
  SetSharedPoolThreads(3);  // swaps the singleton; `held` keeps the old pool
  EXPECT_EQ(held->num_threads(), 2);
  EXPECT_EQ(SharedPool()->num_threads(), 3);
  // The retired pool still executes work correctly.
  std::vector<int> out(64, 0);
  held->ParallelFor(0, out.size(), [&](size_t i) { out[i] = 1; });
  for (int v : out) EXPECT_EQ(v, 1);
  SetSharedPoolThreads(0);
}

TEST(SharedPoolTest, ResizeRacesWithInFlightParallelFor) {
  // TSan-exercised (thread_pool_test_tsan builds this file with
  // -fsanitize=thread): resizing the shared pool while another thread is
  // mid-ParallelFor must be free of data races, lost indices, and
  // self-join deadlocks.
  SetSharedPoolThreads(2);
  std::atomic<bool> stop{false};
  std::atomic<long> covered{0};
  std::thread worker([&] {
    while (!stop.load()) {
      std::vector<int> hits(256, 0);
      ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
      long sum = 0;
      for (int h : hits) sum += h;
      ASSERT_EQ(sum, 256);  // every index exactly once, every iteration
      covered.fetch_add(sum);
    }
  });
  for (int round = 0; round < 20; ++round) {
    SetSharedPoolThreads(1 + round % 3);
  }
  stop.store(true);
  worker.join();
  EXPECT_GT(covered.load(), 0);
  SetSharedPoolThreads(0);
}

}  // namespace
}  // namespace fab::util
