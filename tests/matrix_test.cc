#include "ml/matrix.h"

#include <gtest/gtest.h>

namespace fab::ml {
namespace {

TEST(ColMatrixTest, FromColumnsShapes) {
  auto m = ColMatrix::FromColumns({{1, 2, 3}, {4, 5, 6}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 3u);
  EXPECT_EQ(m->cols(), 2u);
  EXPECT_DOUBLE_EQ(m->at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m->at(2, 1), 6.0);
}

TEST(ColMatrixTest, FromColumnsRejectsRagged) {
  EXPECT_FALSE(ColMatrix::FromColumns({{1, 2}, {1}}).ok());
}

TEST(ColMatrixTest, EmptyMatrix) {
  auto m = ColMatrix::FromColumns({});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 0u);
  EXPECT_EQ(m->cols(), 0u);
}

TEST(ColMatrixTest, SetMutates) {
  ColMatrix m(2, 2);
  m.set(0, 1, 9.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 9.0);
}

TEST(ColMatrixTest, TakeRowsGathersWithDuplicates) {
  auto m = ColMatrix::FromColumns({{1, 2, 3}, {10, 20, 30}});
  const ColMatrix sub = m->TakeRows({2, 0, 2});
  EXPECT_EQ(sub.rows(), 3u);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 1), 10.0);
  EXPECT_DOUBLE_EQ(sub.at(2, 1), 30.0);
}

TEST(ColMatrixTest, SortIndexOrdersColumns) {
  auto m = ColMatrix::FromColumns({{3, 1, 2}});
  m->BuildSortIndex();
  ASSERT_TRUE(m->has_sort_index());
  EXPECT_EQ(m->sorted_order(0), (std::vector<int>{1, 2, 0}));
}

TEST(ColMatrixTest, SortIndexStableOnTies) {
  auto m = ColMatrix::FromColumns({{2, 2, 1}});
  m->BuildSortIndex();
  EXPECT_EQ(m->sorted_order(0), (std::vector<int>{2, 0, 1}));
}

Dataset MakeDataset() {
  Dataset d;
  d.x = *ColMatrix::FromColumns({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  d.y = {10, 20, 30};
  d.feature_names = {"a", "b", "c"};
  return d;
}

TEST(DatasetTest, TakeRowsKeepsAlignment) {
  const Dataset d = MakeDataset();
  const Dataset sub = d.TakeRows({2, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.y[0], 30.0);
  EXPECT_DOUBLE_EQ(sub.x.at(0, 0), 3.0);
  EXPECT_EQ(sub.feature_names, d.feature_names);
}

TEST(DatasetTest, SelectFeaturesSubsetsColumns) {
  const Dataset d = MakeDataset();
  auto sub = d.SelectFeatures({2, 0});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_features(), 2u);
  EXPECT_EQ(sub->feature_names, (std::vector<std::string>{"c", "a"}));
  EXPECT_DOUBLE_EQ(sub->x.at(0, 0), 7.0);
  EXPECT_EQ(sub->y, d.y);
}

TEST(DatasetTest, SelectFeaturesRejectsOutOfRange) {
  const Dataset d = MakeDataset();
  EXPECT_FALSE(d.SelectFeatures({3}).ok());
  EXPECT_FALSE(d.SelectFeatures({-1}).ok());
}

TEST(DatasetTest, FeaturePositionsByName) {
  const Dataset d = MakeDataset();
  auto pos = d.FeaturePositions({"c", "a"});
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, (std::vector<int>{2, 0}));
  EXPECT_FALSE(d.FeaturePositions({"zzz"}).ok());
}

}  // namespace
}  // namespace fab::ml
