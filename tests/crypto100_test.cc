#include "core/crypto100.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fab::core {
namespace {

TEST(Crypto100Test, MatchesFormula) {
  const double sum = 1e12;  // $1T market
  const auto v = Crypto100Value(sum, 7.0);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, sum / std::pow(12.0, 7.0), 1e-6);
}

TEST(Crypto100Test, DefaultPowerIsSeven) {
  const double sum = 5e11;
  EXPECT_DOUBLE_EQ(*Crypto100Value(sum), *Crypto100Value(sum, 7.0));
}

TEST(Crypto100Test, RejectsNonPositiveOrTinySums) {
  EXPECT_FALSE(Crypto100Value(0.0).ok());
  EXPECT_FALSE(Crypto100Value(-5.0).ok());
  EXPECT_FALSE(Crypto100Value(1.0).ok());  // log10 = 0 -> division by zero
}

TEST(Crypto100Test, MonotoneInMarketCapOverRealisticRange) {
  // Over the study's market sizes ($10B..$3T) the index rises with the cap.
  double prev = 0.0;
  for (double cap = 1e10; cap <= 3e12; cap *= 1.5) {
    const double v = *Crypto100Value(cap);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Crypto100Test, HigherPowerCompressesMore) {
  const double sum = 1e12;
  EXPECT_GT(*Crypto100Value(sum, 6.0), *Crypto100Value(sum, 7.0));
  EXPECT_GT(*Crypto100Value(sum, 7.0), *Crypto100Value(sum, 8.0));
}

TEST(Crypto100Test, PowerSevenLandsOnBtcScale) {
  // A $1T top-100 market under power 7: index in the tens of thousands,
  // like BTC's price. Power 6 leaves it ~12x larger.
  const double v7 = *Crypto100Value(1e12, 7.0);
  EXPECT_GT(v7, 5e3);
  EXPECT_LT(v7, 1e5);
  const double v6 = *Crypto100Value(1e12, 6.0);
  EXPECT_GT(v6 / v7, 10.0);
}

TEST(Crypto100SeriesTest, MapsElementwise) {
  const std::vector<double> sums{1e11, 2e11, 3e11};
  const auto series = Crypto100Series(sums, 7.0);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ((*series)[i], *Crypto100Value(sums[i], 7.0));
  }
}

TEST(Crypto100SeriesTest, FailsOnAnyBadElement) {
  EXPECT_FALSE(Crypto100Series({1e11, 0.0}, 7.0).ok());
}

TEST(LogScaleDistanceTest, IdenticalSeriesIsZero) {
  const std::vector<double> s{1.0, 10.0, 100.0};
  EXPECT_DOUBLE_EQ(*LogScaleDistance(s, s), 0.0);
}

TEST(LogScaleDistanceTest, FactorOfTenIsOne) {
  const std::vector<double> a{10.0, 100.0};
  const std::vector<double> b{1.0, 10.0};
  EXPECT_DOUBLE_EQ(*LogScaleDistance(a, b), 1.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(*LogScaleDistance(b, a), 1.0);
}

TEST(LogScaleDistanceTest, RejectsBadInput) {
  EXPECT_FALSE(LogScaleDistance({1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(LogScaleDistance({}, {}).ok());
  EXPECT_FALSE(LogScaleDistance({1.0, -1.0}, {1.0, 1.0}).ok());
}

class PowerSweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerSweep, IndexStaysFiniteAndPositive) {
  const double power = GetParam();
  for (double cap = 1e9; cap <= 1e13; cap *= 10.0) {
    const auto v = Crypto100Value(cap, power);
    ASSERT_TRUE(v.ok());
    EXPECT_GT(*v, 0.0);
    EXPECT_TRUE(std::isfinite(*v));
  }
}

INSTANTIATE_TEST_SUITE_P(Powers, PowerSweep,
                         ::testing::Values(4.0, 5.0, 6.0, 7.0, 8.0, 9.0));

}  // namespace
}  // namespace fab::core
