#include "serve/registry.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "ml/forest.h"
#include "ml/gbdt.h"
#include "serve/snapshot.h"
#include "util/random.h"

namespace fab::serve {
namespace {

ml::ColMatrix MakeMatrix(size_t n, size_t f, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  return *ml::ColMatrix::FromColumns(std::move(cols));
}

std::vector<double> MakeTarget(const ml::ColMatrix& x, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> y(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    y[i] = x.at(i, 0) - 0.5 * x.at(i, 1) + 0.2 * rng.Normal();
  }
  return y;
}

std::unique_ptr<ml::Regressor> TrainForest(uint64_t seed, int n_trees = 8) {
  const ml::ColMatrix train = MakeMatrix(150, 4, seed);
  ml::ForestParams params;
  params.n_trees = n_trees;
  params.seed = seed;
  auto rf = std::make_unique<ml::RandomForestRegressor>(params);
  EXPECT_TRUE(rf->Fit(train, MakeTarget(train, seed + 1)).ok());
  return rf;
}

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("fab_registry_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(RegistryTest, FileNameRoundTrip) {
  const ModelKey key{"2019", 30, "xgb"};
  EXPECT_EQ(SnapshotFileName(key), "2019_w30_xgb.fabsnap");
  auto parsed = ParseSnapshotFileName("2019_w30_xgb.fabsnap");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, key);
  EXPECT_FALSE(ParseSnapshotFileName("readme.txt").ok());
  EXPECT_FALSE(ParseSnapshotFileName("2019_xgb.fabsnap").ok());
  EXPECT_FALSE(ParseSnapshotFileName("2019_wfoo_xgb.fabsnap").ok());
  EXPECT_FALSE(ParseSnapshotFileName(".fabsnap").ok());
}

TEST_F(RegistryTest, LazyLoadAndMemoize) {
  const ModelKey key{"2017", 1, "rf"};
  ModelRegistry registry(dir_);
  ASSERT_TRUE(
      SnapshotCodec::Save(*TrainForest(41), registry.PathFor(key)).ok());
  EXPECT_EQ(registry.LoadedCount(), 0u);
  auto first = registry.Get(key);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(registry.LoadedCount(), 1u);
  auto second = registry.Get(key);
  ASSERT_TRUE(second.ok());
  // Memoized: same servable instance, no second disk load.
  EXPECT_EQ(first->get(), second->get());
}

TEST_F(RegistryTest, MissingModelIsNotFound) {
  ModelRegistry registry(dir_);
  const auto result = registry.Get(ModelKey{"2017", 90, "mlp"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(RegistryTest, ReloadHotSwapsEntry) {
  const ModelKey key{"2017", 7, "rf"};
  ModelRegistry registry(dir_);
  ASSERT_TRUE(
      SnapshotCodec::Save(*TrainForest(50), registry.PathFor(key)).ok());
  auto before = registry.Get(key);
  ASSERT_TRUE(before.ok());

  // Retrain with a different seed and republish.
  ASSERT_TRUE(
      SnapshotCodec::Save(*TrainForest(99), registry.PathFor(key)).ok());
  ASSERT_TRUE(registry.Reload(key).ok());
  auto after = registry.Get(key);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->get(), after->get());
  // The old servable handle stays usable (in-flight batches don't care
  // about the swap).
  const ml::ColMatrix test = MakeMatrix(10, 4, 7);
  (void)(*before)->Predict(test);
}

TEST_F(RegistryTest, ListOnDiskFindsSnapshots) {
  ModelRegistry registry(dir_);
  ASSERT_TRUE(SnapshotCodec::Save(
                  *TrainForest(60),
                  registry.PathFor(ModelKey{"2017", 1, "rf"}))
                  .ok());
  ASSERT_TRUE(SnapshotCodec::Save(
                  *TrainForest(61),
                  registry.PathFor(ModelKey{"2019", 90, "rf"}))
                  .ok());
  std::ofstream(dir_ + "/notes.txt") << "ignored";
  const std::vector<ModelKey> keys = registry.ListOnDisk();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], (ModelKey{"2017", 1, "rf"}));
  EXPECT_EQ(keys[1], (ModelKey{"2019", 90, "rf"}));
}

TEST_F(RegistryTest, ConcurrentGetAndReload) {
  const ModelKey key{"2019", 1, "rf"};
  ModelRegistry registry(dir_);
  ASSERT_TRUE(
      SnapshotCodec::Save(*TrainForest(70), registry.PathFor(key)).ok());
  const ml::ColMatrix test = MakeMatrix(16, 4, 71);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  // Reader threads hammer Get + Predict while a writer hot-swaps the
  // model; every read must see a fully-formed servable.
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto servable = registry.Get(key);
        if (!servable.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const std::vector<double> pred = (*servable)->Predict(test);
        if (pred.size() != test.rows()) failures.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(SnapshotCodec::Save(*TrainForest(100 + round),
                                    registry.PathFor(key))
                    .ok());
    ASSERT_TRUE(registry.Reload(key).ok());
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(RegistryTest, GenerationTracksMutations) {
  const ModelKey key{"2019", 1, "rf"};
  ModelRegistry registry(dir_);
  ASSERT_TRUE(
      SnapshotCodec::Save(*TrainForest(90), registry.PathFor(key)).ok());
  EXPECT_EQ(registry.Generation(), 0u);

  ASSERT_TRUE(registry.Get(key).ok());  // first load inserts
  EXPECT_EQ(registry.Generation(), 1u);
  ASSERT_TRUE(registry.Get(key).ok());  // cache hit: no mutation
  EXPECT_EQ(registry.Generation(), 1u);

  ASSERT_TRUE(registry.Reload(key).ok());
  EXPECT_EQ(registry.Generation(), 2u);

  registry.Evict(key);
  EXPECT_EQ(registry.Generation(), 3u);
  registry.Evict(key);  // nothing left to remove: no mutation
  EXPECT_EQ(registry.Generation(), 3u);

  ASSERT_TRUE(registry.Put(ModelKey{"2017", 7, "rf"}, TrainForest(91)).ok());
  EXPECT_EQ(registry.Generation(), 4u);
}

TEST_F(RegistryTest, InstallPersistsAndServes) {
  const ModelKey key{"2017", 90, "rf"};
  ModelRegistry registry(dir_);
  ASSERT_TRUE(registry.Install(key, TrainForest(80)).ok());
  EXPECT_TRUE(std::filesystem::exists(registry.PathFor(key)));
  // A cold registry over the same directory can serve it.
  ModelRegistry cold(dir_);
  auto servable = cold.Get(key);
  ASSERT_TRUE(servable.ok());
  EXPECT_TRUE((*servable)->flattened());
  EXPECT_EQ((*servable)->num_features(), 4u);
}

}  // namespace
}  // namespace fab::serve
