#include "sim/assets.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace fab::sim {
namespace {

LatentState SmallLatent(uint64_t seed = 42) {
  LatentConfig config;
  config.start = Date(2016, 7, 1);
  config.end = Date(2019, 6, 30);
  config.seed = seed;
  return std::move(GenerateLatentState(config)).value();
}

TEST(BtcSupplyTest, KnownScheduleValues) {
  EXPECT_NEAR(BtcSupplyOn(Date(2016, 7, 9)), 15.72e6, 1e3);
  // One year after the 2016 halving: +365 * 144 * 12.5 ≈ +657k.
  EXPECT_NEAR(BtcSupplyOn(Date(2017, 7, 9)), 15.72e6 + 365 * 144 * 12.5, 1e3);
  // After the 2020 halving the rate halves.
  const double before = BtcSupplyOn(Date(2020, 5, 11));
  EXPECT_NEAR(BtcSupplyOn(Date(2020, 5, 12)) - before, 144 * 6.25, 1e-6);
}

TEST(BtcSupplyTest, MonotoneIncreasing) {
  double prev = 0.0;
  for (Date d = Date(2016, 7, 1); d <= Date(2023, 6, 30); d = d.AddDays(30)) {
    const double s = BtcSupplyOn(d);
    EXPECT_GT(s, prev);
    prev = s;
  }
  // Total supply stays below the 21M cap.
  EXPECT_LT(BtcSupplyOn(Date(2023, 6, 30)), 21e6);
}

TEST(AssetPanelTest, RejectsTooFewAlts) {
  const LatentState latent = SmallLatent();
  AssetUniverseConfig config;
  config.num_alts = 50;
  EXPECT_FALSE(GenerateAssetPanel(latent, config).ok());
}

TEST(AssetPanelTest, ShapesAndNames) {
  const LatentState latent = SmallLatent();
  AssetUniverseConfig config;
  config.num_alts = 120;
  const auto panel = GenerateAssetPanel(latent, config);
  ASSERT_TRUE(panel.ok());
  EXPECT_EQ(panel->num_assets(), 121u);
  EXPECT_EQ(panel->names[0], "BTC");
  EXPECT_EQ(panel->num_days(), latent.num_days());
  EXPECT_EQ(panel->mcap.size(), latent.num_days());
  EXPECT_EQ(panel->mcap[0].size(), 121u);
}

TEST(AssetPanelTest, BtcCapMatchesPriceTimesSupply) {
  const LatentState latent = SmallLatent();
  AssetUniverseConfig config;
  const auto panel = GenerateAssetPanel(latent, config);
  for (size_t t = 0; t < latent.num_days(); t += 100) {
    EXPECT_NEAR(panel->mcap[t][0],
                latent.btc_close[t] * BtcSupplyOn(latent.dates[t]),
                1e-6 * panel->mcap[t][0]);
  }
}

TEST(AssetPanelTest, CapsNonNegativeAndZeroBeforeLaunch) {
  const LatentState latent = SmallLatent();
  AssetUniverseConfig config;
  const auto panel = GenerateAssetPanel(latent, config);
  for (size_t t = 0; t < latent.num_days(); t += 50) {
    for (size_t i = 0; i < panel->num_assets(); ++i) {
      EXPECT_GE(panel->mcap[t][i], 0.0);
      if (latent.dates[t] < panel->launch[i]) {
        EXPECT_DOUBLE_EQ(panel->mcap[t][i], 0.0);
      }
    }
  }
}

TEST(AssetPanelTest, TopKSumIsMonotoneInK) {
  const LatentState latent = SmallLatent();
  const auto panel = GenerateAssetPanel(latent, AssetUniverseConfig{});
  const size_t t = latent.num_days() / 2;
  const double top10 = panel->TopKSum(t, 10);
  const double top100 = panel->TopKSum(t, 100);
  const double total = panel->TotalSum(t);
  EXPECT_LE(top10, top100);
  EXPECT_LE(top100, total);
  EXPECT_GT(top10, 0.0);
}

TEST(AssetPanelTest, Top100IsMajorityOfTotal) {
  const LatentState latent = SmallLatent();
  const auto panel = GenerateAssetPanel(latent, AssetUniverseConfig{});
  for (size_t t = 0; t < latent.num_days(); t += 100) {
    EXPECT_GT(panel->TopKSum(t, 100) / panel->TotalSum(t), 0.6);
  }
}

TEST(AssetPanelTest, BtcDominanceWithinBounds) {
  const LatentState latent = SmallLatent();
  const auto panel = GenerateAssetPanel(latent, AssetUniverseConfig{});
  for (size_t t = 0; t < latent.num_days(); t += 50) {
    const double dom = panel->mcap[t][0] / panel->TotalSum(t);
    EXPECT_GT(dom, 0.25);
    EXPECT_LT(dom, 0.95);
  }
}

TEST(AssetPanelTest, DeterministicInSeed) {
  const LatentState latent = SmallLatent();
  AssetUniverseConfig config;
  config.seed = 9;
  const auto a = GenerateAssetPanel(latent, config);
  const auto b = GenerateAssetPanel(latent, config);
  EXPECT_EQ(a->mcap[100], b->mcap[100]);
}

TEST(AssetPanelTest, RankChurnHappens) {
  // The set of top-100 assets should differ between early and late dates.
  const LatentState latent = SmallLatent();
  const auto panel = GenerateAssetPanel(latent, AssetUniverseConfig{});
  auto top_set = [&](size_t t) {
    std::vector<std::pair<double, size_t>> caps;
    for (size_t i = 0; i < panel->num_assets(); ++i) {
      caps.push_back({panel->mcap[t][i], i});
    }
    std::sort(caps.rbegin(), caps.rend());
    std::set<size_t> out;
    for (int k = 0; k < 100; ++k) out.insert(caps[static_cast<size_t>(k)].second);
    return out;
  };
  const auto early = top_set(50);
  const auto late = top_set(latent.num_days() - 1);
  size_t overlap = 0;
  for (size_t i : early) overlap += late.count(i);
  EXPECT_LT(overlap, 100u);  // membership changed
  EXPECT_GT(overlap, 40u);   // but not a complete reshuffle
}

}  // namespace
}  // namespace fab::sim
