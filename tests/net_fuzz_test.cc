// Deterministic mini-fuzz for the two byte-level parsers the serving
// front-end exposes to untrusted input: net::ParseJson and the HTTP/1.1
// HttpParser. Every case is Rng-driven from fixed seeds — a failure
// reproduces exactly — and iteration counts are bounded so the test
// stays in the quick tier. The asan/tsan twins run the same cases under
// sanitizers, which is where memory bugs would actually surface.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "net/http.h"
#include "net/json.h"
#include "util/random.h"

namespace fab::net {
namespace {

using fab::Rng;

// ---------------------------------------------------------------------------
// JSON

const std::vector<std::string>& JsonCorpus() {
  static const std::vector<std::string> kCorpus = {
      R"({"model": "rf", "horizon": 30, "features": [1.5, -2e3, 0.0]})",
      R"({"a": {"b": {"c": [true, false, null, "x\"y\\z\n"]}}})",
      R"([[], {}, [{}], {"": []}, 1e-9, -0.5, 123456789])",
      R"({"unicode": "Aé", "empty": "", "n": null})",
      R"(   {"ws": 1}   )",
      R"(3.141592653589793)",
      R"("just a string")",
  };
  return kCorpus;
}

/// Touches every node of a parsed document (exercises accessors on
/// whatever shape the fuzzer produced).
size_t CountNodes(const JsonValue& v) {
  size_t n = 1;
  if (v.is_array()) {
    for (const auto& e : v.array()) n += CountNodes(e);
  } else if (v.is_object()) {
    for (const auto& [key, val] : v.object()) n += key.empty() + CountNodes(val);
  } else if (v.is_string()) {
    n += v.str().size() > 0 ? 0 : 0;
  }
  return n;
}

std::string Mutate(const std::string& base, Rng* rng) {
  std::string s = base;
  const int edits = 1 + static_cast<int>(rng->UniformInt(4));
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const size_t pos = rng->UniformInt(s.size());
    switch (rng->UniformInt(4)) {
      case 0:  // flip a byte
        s[pos] = static_cast<char>(rng->UniformInt(256));
        break;
      case 1:  // delete a byte
        s.erase(pos, 1);
        break;
      case 2:  // insert a structural byte
        s.insert(pos, 1, "{}[],:\"\\0123eE.-+"[rng->UniformInt(17)]);
        break;
      default:  // truncate
        s.resize(pos);
        break;
    }
  }
  return s;
}

TEST(NetFuzzTest, JsonCorpusParsesAndWalks) {
  for (const std::string& doc : JsonCorpus()) {
    auto parsed = ParseJson(doc);
    ASSERT_TRUE(parsed.ok()) << doc << ": " << parsed.status().ToString();
    EXPECT_GE(CountNodes(*parsed), 1u);
  }
}

TEST(NetFuzzTest, JsonMutationsNeverCrashAndVerdictIsDeterministic) {
  Rng rng(0xF022u);
  for (int iter = 0; iter < 600; ++iter) {
    const std::string& base = JsonCorpus()[rng.UniformInt(JsonCorpus().size())];
    const std::string mutated = Mutate(base, &rng);
    auto first = ParseJson(mutated);
    if (first.ok()) CountNodes(*first);
    // Same bytes, same verdict: the parser holds no hidden state.
    auto second = ParseJson(mutated);
    EXPECT_EQ(first.ok(), second.ok()) << mutated;
  }
}

TEST(NetFuzzTest, JsonRandomGarbageNeverCrashes) {
  Rng rng(0xBADF00Du);
  for (int iter = 0; iter < 400; ++iter) {
    std::string garbage(rng.UniformInt(200), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.UniformInt(256));
    auto parsed = ParseJson(garbage);
    if (parsed.ok()) CountNodes(*parsed);
  }
}

TEST(NetFuzzTest, JsonDepthBombIsRejectedNotOverflowed) {
  // 20k-deep nesting must come back as a clean error well before the
  // call stack is in danger.
  const std::string array_bomb(20000, '[');
  EXPECT_FALSE(ParseJson(array_bomb).ok());
  std::string object_bomb;
  for (int i = 0; i < 20000; ++i) object_bomb += "{\"a\":";
  EXPECT_FALSE(ParseJson(object_bomb).ok());

  // The bound is exact: ParseValue rejects depth > max_depth, and the
  // outermost value sits at depth 0, so max_depth+1 brackets parse and
  // max_depth+2 do not.
  auto nested = [](int depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  EXPECT_TRUE(ParseJson(nested(9), 8).ok());
  EXPECT_FALSE(ParseJson(nested(10), 8).ok());
}

TEST(NetFuzzTest, JsonTruncationsOfValidDocsFailCleanly) {
  for (const std::string& doc : JsonCorpus()) {
    for (size_t cut = 0; cut < doc.size(); ++cut) {
      auto parsed = ParseJson(doc.substr(0, cut));
      if (parsed.ok()) CountNodes(*parsed);  // e.g. "3.14" cut to "3"
    }
  }
}

// ---------------------------------------------------------------------------
// HTTP/1.1

std::string CanonicalRequest() {
  return "POST /predict?window=30 HTTP/1.1\r\n"
         "Host: localhost:8080\r\n"
         "Content-Type: application/json\r\n"
         "X-Request-Id: fuzz-0001\r\n"
         "Content-Length: 27\r\n"
         "\r\n"
         R"({"features": [1.0, 2.0, 3]})";
}

void ExpectCanonical(const HttpParser& parser) {
  ASSERT_TRUE(parser.done());
  const HttpRequest& req = parser.request();
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/predict?window=30");
  EXPECT_EQ(req.version, "HTTP/1.1");
  ASSERT_EQ(req.headers.size(), 4u);
  ASSERT_NE(req.Header("Content-Length"), nullptr);
  EXPECT_EQ(req.body, R"({"features": [1.0, 2.0, 3]})");
}

TEST(NetFuzzTest, HttpSplitAtEveryByteParsesIdentically) {
  const std::string wire = CanonicalRequest();
  for (size_t split = 0; split <= wire.size(); ++split) {
    HttpParser parser(HttpParser::Mode::kRequest);
    ASSERT_TRUE(parser.Consume(wire.data(), split).ok()) << "split " << split;
    ASSERT_TRUE(parser.Consume(wire.data() + split, wire.size() - split).ok())
        << "split " << split;
    ExpectCanonical(parser);
  }
}

TEST(NetFuzzTest, HttpRandomChunkingParsesIdentically) {
  const std::string wire = CanonicalRequest();
  Rng rng(0xC4A11u);
  for (int iter = 0; iter < 200; ++iter) {
    HttpParser parser(HttpParser::Mode::kRequest);
    size_t off = 0;
    while (off < wire.size()) {
      const size_t n =
          std::min(wire.size() - off, 1 + rng.UniformInt(17));
      ASSERT_TRUE(parser.Consume(wire.data() + off, n).ok());
      off += n;
    }
    ExpectCanonical(parser);
  }
}

TEST(NetFuzzTest, HttpTruncationIsIncompleteNotAnError) {
  const std::string wire = CanonicalRequest();
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    HttpParser parser(HttpParser::Mode::kRequest);
    ASSERT_TRUE(parser.Consume(wire.data(), cut).ok()) << "cut " << cut;
    EXPECT_FALSE(parser.done()) << "cut " << cut;
    EXPECT_FALSE(parser.error()) << "cut " << cut;
  }
}

TEST(NetFuzzTest, HttpByteFlipsNeverCrashAndErrorsStayTerminal) {
  const std::string wire = CanonicalRequest();
  Rng rng(0x5EED5u);
  for (int iter = 0; iter < 400; ++iter) {
    std::string mutated = wire;
    const int flips = 1 + static_cast<int>(rng.UniformInt(3));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.UniformInt(mutated.size())] =
          static_cast<char>(rng.UniformInt(256));
    }
    HttpParser parser(HttpParser::Mode::kRequest);
    (void)parser.Consume(mutated.data(), mutated.size());
    if (parser.done()) {
      // Whatever parsed must be internally coherent.
      const HttpRequest& req = parser.request();
      const std::string* len = req.Header("Content-Length");
      if (len != nullptr && *len == "27") {
        EXPECT_EQ(req.body.size(), 27u);
      }
    } else if (parser.error()) {
      // Terminal: more bytes never resurrect the parse or crash.
      (void)parser.Consume(mutated.data(), mutated.size());
      EXPECT_TRUE(parser.error());
      EXPECT_FALSE(parser.done());
    }
  }
}

TEST(NetFuzzTest, HttpHostileContentLengthsAreRejected) {
  for (const char* bad : {"abc", "-1", "1e3", "27x", "0x1b",
                          "99999999999999999999", "4294967296000"}) {
    HttpParser parser(HttpParser::Mode::kRequest);
    const std::string wire = std::string("POST / HTTP/1.1\r\nContent-Length: ") +
                             bad + "\r\n\r\nbody";
    (void)parser.Consume(wire.data(), wire.size());
    EXPECT_FALSE(parser.done()) << bad;
    EXPECT_TRUE(parser.error()) << bad;
  }
}

TEST(NetFuzzTest, HttpHeaderFloodHitsTheHeadLimit) {
  HttpParser parser(HttpParser::Mode::kRequest);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 4000; ++i) {
    wire += "X-Flood-" + std::to_string(i) + ": aaaaaaaaaaaaaaaa\r\n";
  }
  wire += "\r\n";
  (void)parser.Consume(wire.data(), wire.size());
  EXPECT_TRUE(parser.error());
  EXPECT_FALSE(parser.done());
}

TEST(NetFuzzTest, HttpPipelinedRequestsSurviveRandomChunking) {
  const std::string wire = CanonicalRequest() + CanonicalRequest();
  Rng rng(0x9199u);
  for (int iter = 0; iter < 100; ++iter) {
    HttpParser parser(HttpParser::Mode::kRequest);
    size_t off = 0;
    int completed = 0;
    while (off < wire.size() || parser.done()) {
      if (parser.done()) {
        ExpectCanonical(parser);
        ++completed;
        if (completed == 2) break;
        ASSERT_TRUE(parser.Reset().ok());
        continue;
      }
      const size_t n = std::min(wire.size() - off, 1 + rng.UniformInt(31));
      ASSERT_TRUE(parser.Consume(wire.data() + off, n).ok());
      off += n;
    }
    EXPECT_EQ(completed, 2);
  }
}

}  // namespace
}  // namespace fab::net
