#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/obs/clock.h"
#include "util/thread_annotations.h"

namespace fab::util {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  long counter = 0;  // deliberately unsynchronized except via mu
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(MutexTest, TryLockFailsWhenHeldAndSucceedsWhenFree) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> acquired{true};
  // TryLock from another thread must fail while we hold the mutex.
  std::thread prober([&] { acquired.store(mu.TryLock()); });
  prober.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  MutexLock lock(mu);
  EXPECT_TRUE(ready);
}

TEST(CondVarTest, WaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline = obs::Clock::Now() + std::chrono::milliseconds(5);
  // Nobody notifies, so the wait must report timeout (false) and return
  // with the lock re-held (verified by the guarded write below).
  bool woke = cv.WaitUntil(mu, deadline);
  EXPECT_FALSE(woke);
  EXPECT_GE(obs::Clock::Now(), deadline);
}

TEST(CondVarTest, WaitUntilWakesBeforeDeadlineOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  bool saw_ready = false;
  {
    MutexLock lock(mu);
    const auto deadline = obs::Clock::Now() + std::chrono::seconds(30);
    while (!ready) {
      if (!cv.WaitUntil(mu, deadline)) break;
    }
    saw_ready = ready;
  }
  notifier.join();
  EXPECT_TRUE(saw_ready);
}

// Sanity check that the annotation macros compile (as attributes under
// Clang, as nothing elsewhere) when applied the way the codebase applies
// them: a guarded member plus methods annotated against the capability.
class AnnotatedCounter {
 public:
  void Increment() FAB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
  }
  int Get() const FAB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ FAB_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotationsTest, AnnotatedClassBehavesNormally) {
  AnnotatedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Get(), 4000);
}

}  // namespace
}  // namespace fab::util
