#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/stats.h"

namespace fab {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  std::vector<double> samples(50000);
  for (auto& s : samples) s = rng.Normal();
  EXPECT_NEAR(stats::Mean(samples), 0.0, 0.02);
  EXPECT_NEAR(stats::StdDev(samples), 1.0, 0.02);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(12);
  std::vector<double> samples(50000);
  for (auto& s : samples) s = rng.Normal(10.0, 3.0);
  EXPECT_NEAR(stats::Mean(samples), 10.0, 0.1);
  EXPECT_NEAR(stats::StdDev(samples), 3.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  std::vector<double> samples(50000);
  for (auto& s : samples) s = rng.Exponential(2.0);
  EXPECT_NEAR(stats::Mean(samples), 0.5, 0.02);
  EXPECT_GT(stats::Min(samples), 0.0);
}

TEST(RngTest, GammaMeanAndVarianceMatch) {
  Rng rng(14);
  const double shape = 3.0;
  const double scale = 2.0;
  std::vector<double> samples(50000);
  for (auto& s : samples) s = rng.Gamma(shape, scale);
  EXPECT_NEAR(stats::Mean(samples), shape * scale, 0.1);
  EXPECT_NEAR(stats::Variance(samples), shape * scale * scale, 0.6);
}

TEST(RngTest, GammaWithShapeBelowOne) {
  Rng rng(15);
  std::vector<double> samples(20000);
  for (auto& s : samples) s = rng.Gamma(0.5, 1.0);
  EXPECT_NEAR(stats::Mean(samples), 0.5, 0.03);
  EXPECT_GT(stats::Min(samples), 0.0);
}

TEST(RngTest, StudentTHasFatterTailsThanNormal) {
  Rng rng(16);
  int t_extreme = 0;
  int normal_extreme = 0;
  for (int i = 0; i < 50000; ++i) {
    if (std::fabs(rng.StudentT(3.0)) > 4.0) ++t_extreme;
    if (std::fabs(rng.Normal()) > 4.0) ++normal_extreme;
  }
  EXPECT_GT(t_extreme, normal_extreme * 5);
}

TEST(RngTest, BernoulliFrequencyMatches) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(18);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.Poisson(4.5);
  EXPECT_NEAR(sum / 20000.0, 4.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.Poisson(100.0);
  EXPECT_NEAR(sum / 20000.0, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(20);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithReplacementInRange) {
  Rng rng(22);
  const std::vector<int> sample = rng.SampleWithReplacement(10, 1000);
  EXPECT_EQ(sample.size(), 1000u);
  for (int s : sample) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 10);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(23);
  const std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (int s : sample) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSetIsPermutation) {
  Rng rng(24);
  std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample[static_cast<size_t>(i)], i);
}

TEST(RngTest, ForkProducesStableChildSeeds) {
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(a.Fork(1), b.Fork(1));
  EXPECT_NE(a.Fork(1), a.Fork(2));
}

class RngDistributionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngDistributionSweep, UniformMeanIsHalfAcrossSeeds) {
  Rng rng(GetParam());
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST_P(RngDistributionSweep, NormalSkewIsSmallAcrossSeeds) {
  Rng rng(GetParam());
  std::vector<double> s(20000);
  for (auto& v : s) v = rng.Normal();
  const double m = stats::Mean(s);
  const double sd = stats::StdDev(s);
  double skew = 0.0;
  for (double v : s) skew += std::pow((v - m) / sd, 3.0);
  skew /= static_cast<double>(s.size());
  EXPECT_NEAR(skew, 0.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngDistributionSweep,
                         ::testing::Values(1, 2, 3, 1000, 99999));

}  // namespace
}  // namespace fab
