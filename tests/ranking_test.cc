#include "explain/ranking.h"

#include <gtest/gtest.h>

namespace fab::explain {
namespace {

TEST(TopKTest, IndicesDescending) {
  EXPECT_EQ(TopKIndices({0.1, 0.9, 0.5}, 2), (std::vector<int>{1, 2}));
  EXPECT_EQ(TopKIndices({0.1, 0.9, 0.5}, 10), (std::vector<int>{1, 2, 0}));
  EXPECT_TRUE(TopKIndices({}, 3).empty());
}

TEST(TopKTest, NamesFollowIndices) {
  const std::vector<std::string> names{"a", "b", "c"};
  EXPECT_EQ(TopKNames({0.1, 0.9, 0.5}, names, 2),
            (std::vector<std::string>{"b", "c"}));
}

TEST(BottomFractionTest, MarksLowestHalf) {
  const auto mask = BottomFractionMask({4.0, 1.0, 3.0, 2.0}, 0.5);
  EXPECT_EQ(mask, (std::vector<bool>{false, true, false, true}));
}

TEST(BottomFractionTest, ZeroAndFullFractions) {
  const auto none = BottomFractionMask({1, 2, 3}, 0.0);
  EXPECT_EQ(none, (std::vector<bool>{false, false, false}));
  const auto all = BottomFractionMask({1, 2, 3}, 1.0);
  EXPECT_EQ(all, (std::vector<bool>{true, true, true}));
}

TEST(BottomFractionTest, CountMatchesFloor) {
  // 5 elements, fraction 0.5 -> floor(2.5) = 2 marked.
  const auto mask = BottomFractionMask({5, 4, 3, 2, 1}, 0.5);
  int marked = 0;
  for (bool b : mask) marked += b;
  EXPECT_EQ(marked, 2);
  EXPECT_TRUE(mask[4]);
  EXPECT_TRUE(mask[3]);
}

TEST(OverlapTest, CountsDistinctCommonNames) {
  EXPECT_EQ(OverlapCount({"a", "b", "c"}, {"b", "c", "d"}), 2u);
  EXPECT_EQ(OverlapCount({"a"}, {"b"}), 0u);
  EXPECT_EQ(OverlapCount({"a", "b"}, {"b", "b", "b"}), 1u);
  EXPECT_EQ(OverlapCount({}, {"a"}), 0u);
}

TEST(UnionTest, PreservesFirstAppearanceOrder) {
  EXPECT_EQ(UnionNames({"a", "b"}, {"b", "c"}),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(UnionNames({}, {"x", "x"}), (std::vector<std::string>{"x"}));
}

TEST(DifferenceTest, RemovesSecondListMembers) {
  EXPECT_EQ(DifferenceNames({"a", "b", "c"}, {"b"}),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(DifferenceNames({"a"}, {}), (std::vector<std::string>{"a"}));
  EXPECT_TRUE(DifferenceNames({}, {"a"}).empty());
}

TEST(SetAlgebraTest, UnionContainsBothInputs) {
  const std::vector<std::string> a{"x", "y"};
  const std::vector<std::string> b{"y", "z", "w"};
  const auto u = UnionNames(a, b);
  EXPECT_EQ(u.size(), 4u);
  EXPECT_EQ(OverlapCount(u, a), a.size());
  EXPECT_EQ(OverlapCount(u, b), b.size());
}

}  // namespace
}  // namespace fab::explain
