// Golden regression gate for the analysis pipeline: a small FAB_FAST
// scenario pair's final feature vectors and per-window improvement MSEs
// are pinned against checked-in golden values, so future performance or
// parallelism PRs cannot silently change results. MSE lines are stored
// as hexfloat (%a) and compared as exact strings — a one-ULP drift fails.
//
// Regenerate deliberately after an intentional numeric change with:
//   FAB_REGEN_GOLDEN=1 ./golden_pipeline_test
// and commit the updated tests/golden/pipeline_2019.golden.

#include "core/experiments.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fab::core {
namespace {

const int kWindows[] = {7, 30};

/// Mirrors the FAB_FAST tier of ExperimentConfig::FromEnv, shrunk so the
/// full two-window pipeline runs in seconds.
ExperimentConfig GoldenConfig(const std::string& cache_dir) {
  ExperimentConfig config;
  config.seed = 17;
  config.fast = true;
  config.cache_dir = cache_dir;
  config.fra.rf.n_trees = 8;
  config.fra.rf.max_depth = 5;
  config.fra.rf.max_features = 0.4;
  config.fra.xgb.n_rounds = 12;
  config.fra.xgb.max_depth = 3;
  config.fra.pfi_repeats = 1;
  config.feature_vector.rf = config.fra.rf;
  config.feature_vector.shap_row_limit = 40;
  config.scoring_rf = config.fra.rf;
  config.improvement.cv_folds = 3;
  config.improvement.rf = config.fra.rf;
  config.improvement.xgb = config.fra.xgb;
  return config;
}

std::string GoldenPath() {
  return std::string(FAB_GOLDEN_DIR) + "/pipeline_2019.golden";
}

std::string HexDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// The pipeline's pinned surface, one record per line.
Result<std::vector<std::string>> ComputeActualLines(Experiments& ex) {
  std::vector<std::string> lines;
  for (int window : kWindows) {
    FAB_ASSIGN_OR_RETURN(FinalFeatureVector fvec,
                         ex.FinalVector(StudyPeriod::k2019, window));
    for (const std::string& name : fvec.features) {
      lines.push_back("feature," + std::to_string(window) + "," + name);
    }
  }
  for (int window : kWindows) {
    FAB_ASSIGN_OR_RETURN(
        ImprovementResult imp,
        ex.Improvement(StudyPeriod::k2019, window, ModelKind::kRandomForest));
    lines.push_back("diverse_mse," + std::to_string(window) + ",rf," +
                    HexDouble(imp.diverse_mse));
    for (const CategoryImprovement& ci : imp.per_category) {
      lines.push_back("single_mse," + std::to_string(window) + ",rf," +
                      std::string(sim::CategoryKey(ci.category)) + "," +
                      HexDouble(ci.single_mse));
    }
  }
  return lines;
}

TEST(GoldenPipelineTest, MatchesCheckedInGoldenValues) {
  const std::string cache_dir = ::testing::TempDir() + "fab_golden_cache";
  std::filesystem::remove_all(cache_dir);
  Experiments ex(GoldenConfig(cache_dir));
  // Exercise the scenario-level fan-out path while producing the
  // artifacts the assertions below reload.
  ASSERT_TRUE(
      ex.PrecomputeAll({StudyPeriod::k2019},
                       std::vector<int>(std::begin(kWindows),
                                        std::end(kWindows)))
          .ok());
  const auto actual = ComputeActualLines(ex);
  std::filesystem::remove_all(cache_dir);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  ASSERT_FALSE(actual->empty());

  if (std::getenv("FAB_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    for (const std::string& line : *actual) out << line << '\n';
    GTEST_SKIP() << "regenerated " << GoldenPath() << " with "
                 << actual->size() << " lines";
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good())
      << "missing golden file " << GoldenPath()
      << " — run with FAB_REGEN_GOLDEN=1 to create it";
  std::vector<std::string> golden;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) golden.push_back(line);
  }

  ASSERT_EQ(actual->size(), golden.size())
      << "pipeline surface changed shape; regenerate deliberately if the "
         "change is intentional";
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ((*actual)[i], golden[i]) << "golden line " << i << " drifted";
  }
}

}  // namespace
}  // namespace fab::core
