#include "explain/correlation.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace fab::explain {
namespace {

ml::Dataset MakeDataset() {
  Rng rng(3);
  const size_t n = 500;
  std::vector<double> pos(n), neg(n), noise(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    pos[i] = rng.Normal();
    neg[i] = rng.Normal();
    noise[i] = rng.Normal();
    y[i] = 2.0 * pos[i] - 2.0 * neg[i] + 0.5 * rng.Normal();
  }
  ml::Dataset d;
  d.x = *ml::ColMatrix::FromColumns({pos, neg, noise});
  d.y = std::move(y);
  d.feature_names = {"pos", "neg", "noise"};
  return d;
}

TEST(CorrelationTest, SignedCorrelationsMatchConstruction) {
  const ml::Dataset d = MakeDataset();
  const std::vector<double> corr = FeatureTargetCorrelations(d);
  ASSERT_EQ(corr.size(), 3u);
  EXPECT_GT(corr[0], 0.5);
  EXPECT_LT(corr[1], -0.5);
  EXPECT_NEAR(corr[2], 0.0, 0.1);
}

TEST(CorrelationTest, AbsCorrelationsAreNonNegative) {
  const ml::Dataset d = MakeDataset();
  const std::vector<double> corr = AbsFeatureTargetCorrelations(d);
  for (double c : corr) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
  EXPECT_GT(corr[0], 0.5);
  EXPECT_GT(corr[1], 0.5);
}

TEST(CorrelationTest, ConstantFeatureIsZero) {
  ml::Dataset d;
  d.x = *ml::ColMatrix::FromColumns({{1, 1, 1, 1}});
  d.y = {1, 2, 3, 4};
  d.feature_names = {"const"};
  EXPECT_DOUBLE_EQ(FeatureTargetCorrelations(d)[0], 0.0);
}

}  // namespace
}  // namespace fab::explain
