#include "net/json.h"

#include <gtest/gtest.h>

#include <string>

namespace fab::net {
namespace {

TEST(NetJsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("3.25")->number(), 3.25);
  EXPECT_DOUBLE_EQ(ParseJson("-1e3")->number(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseJson("0")->number(), 0.0);
  EXPECT_EQ(ParseJson("\"hi\"")->str(), "hi");
}

TEST(NetJsonTest, ParsesNestedDocument) {
  const std::string doc =
      "{\"period\":\"2017\",\"window\":7,\"model\":\"rf\","
      "\"rows\":[[1.5,-2.0],[0,3]],\"extra\":{\"deep\":[true,null]}}";
  Result<JsonValue> parsed = ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = *parsed;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(*v.GetString("period"), "2017");
  EXPECT_DOUBLE_EQ(*v.GetNumber("window"), 7.0);
  const JsonValue* rows = v.Find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_TRUE(rows->is_array());
  ASSERT_EQ(rows->array().size(), 2u);
  EXPECT_DOUBLE_EQ(rows->array()[0].array()[1].number(), -2.0);
  const JsonValue* extra = v.Find("extra");
  ASSERT_NE(extra, nullptr);
  EXPECT_TRUE(extra->Find("deep")->array()[1].is_null());
}

TEST(NetJsonTest, StringEscapes) {
  Result<JsonValue> parsed =
      ParseJson("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->str(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(NetJsonTest, TypedAccessorsNameTheMissingField) {
  Result<JsonValue> parsed = ParseJson("{\"window\":\"seven\"}");
  ASSERT_TRUE(parsed.ok());
  Result<std::string> missing = parsed->GetString("period");
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("period"), std::string::npos);
  Result<double> mistyped = parsed->GetNumber("window");
  EXPECT_FALSE(mistyped.ok());
  EXPECT_EQ(mistyped.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetJsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
        "\"bad\\q\"", "{\"a\":1} trailing", "[1] 2", "nul"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << bad;
  }
  // Raw control characters must be escaped per RFC 8259.
  EXPECT_FALSE(ParseJson("\"a\nb\"").ok());
}

TEST(NetJsonTest, BoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep, /*max_depth=*/64).ok());
  EXPECT_TRUE(ParseJson(deep, /*max_depth=*/128).ok());
}

TEST(NetJsonTest, ErrorsCarryBytePosition) {
  Result<JsonValue> parsed = ParseJson("{\"a\": !}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("at byte"), std::string::npos);
}

TEST(NetJsonTest, EscapeJsonRoundTripsThroughParser) {
  const std::string original = "line1\nline2\t\"quoted\" back\\slash";
  Result<JsonValue> parsed = ParseJson(EscapeJson(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->str(), original);
}

}  // namespace
}  // namespace fab::net
