#include "sim/market_sim.h"

#include <gtest/gtest.h>

#include <set>

namespace fab::sim {
namespace {

MarketSimConfig SmallConfig(uint64_t seed = 42) {
  MarketSimConfig config;
  config.latent.start = Date(2017, 6, 1);
  config.latent.end = Date(2019, 12, 31);
  config.seed = seed;
  return config;
}

TEST(MarketSimTest, ProducesAllCategories) {
  const auto market = SimulateMarket(SmallConfig());
  ASSERT_TRUE(market.ok());
  for (DataCategory c : AllCategories()) {
    if (c == DataCategory::kOnChainEth) {
      // Extension family, off by default.
      EXPECT_EQ(market->catalog.CountInCategory(c), 0u);
      continue;
    }
    EXPECT_GT(market->catalog.CountInCategory(c), 0u) << CategoryName(c);
  }
  // Rough family sizes (pre-technical-derivation).
  EXPECT_GT(market->catalog.CountInCategory(DataCategory::kOnChainBtc), 80u);
  EXPECT_GT(market->catalog.CountInCategory(DataCategory::kSentiment), 10u);
  EXPECT_GT(market->catalog.CountInCategory(DataCategory::kTradFi), 10u);
  EXPECT_GT(market->catalog.CountInCategory(DataCategory::kMacro), 10u);
}

TEST(MarketSimTest, EveryMetricColumnIsInCatalog) {
  const auto market = SimulateMarket(SmallConfig());
  for (const auto& name : market->metrics.column_names()) {
    EXPECT_TRUE(market->catalog.Has(name)) << name;
  }
  EXPECT_EQ(market->metrics.num_columns(), market->catalog.size());
}

TEST(MarketSimTest, AggregatesAreConsistent) {
  const auto market = SimulateMarket(SmallConfig());
  for (size_t t = 0; t < market->latent.num_days(); t += 60) {
    EXPECT_LE(market->top100_mcap_sum[t], market->total_mcap_sum[t]);
    EXPECT_GT(market->top100_mcap_sum[t], 0.0);
    // BTC alone is part of the top 100.
    EXPECT_GE(market->top100_mcap_sum[t], market->panel.mcap[t][0]);
  }
}

TEST(MarketSimTest, DeterministicInSeed) {
  const auto a = SimulateMarket(SmallConfig(5));
  const auto b = SimulateMarket(SmallConfig(5));
  EXPECT_EQ(a->latent.btc_close, b->latent.btc_close);
  EXPECT_EQ(a->top100_mcap_sum, b->top100_mcap_sum);
  const table::Column& ca = **a->metrics.GetColumn("SplyCur");
  const table::Column& cb = **b->metrics.GetColumn("SplyCur");
  EXPECT_TRUE(ca.EqualsExactly(cb));
}

TEST(MarketSimTest, SeedsChangeTheWorld) {
  const auto a = SimulateMarket(SmallConfig(5));
  const auto b = SimulateMarket(SmallConfig(6));
  EXPECT_NE(a->latent.btc_close, b->latent.btc_close);
}

TEST(MarketSimTest, RawBtcColumnsRegisteredAsTechnical) {
  const auto market = SimulateMarket(SmallConfig());
  EXPECT_EQ(*market->catalog.CategoryOf(kBtcCloseColumn),
            DataCategory::kTechnical);
  EXPECT_EQ(*market->catalog.CategoryOf(kBtcVolumeColumn),
            DataCategory::kTechnical);
  const table::Column& close = **market->metrics.GetColumn(kBtcCloseColumn);
  for (size_t t = 0; t < close.size(); t += 97) {
    EXPECT_DOUBLE_EQ(close.value(t), market->latent.btc_close[t]);
  }
}

TEST(MarketSimTest, MonthlySeriesAreStepFunctions) {
  const auto market = SimulateMarket(SmallConfig());
  const table::Column& cpi = **market->metrics.GetColumn("us_cpi_yoy");
  // Within a month the value is constant.
  int changes = 0;
  for (size_t t = 1; t < cpi.size(); ++t) {
    if (cpi.value(t) != cpi.value(t - 1)) ++changes;
  }
  // ~31 months in the window: one change per month boundary at most.
  EXPECT_LE(changes, 32);
  EXPECT_GT(changes, 20);
}

TEST(MarketSimTest, SentimentSharesSumToRoughlyOne) {
  const auto market = SimulateMarket(SmallConfig());
  const table::Column& pos =
      **market->metrics.GetColumn("social_sentiment_positive");
  const table::Column& neg =
      **market->metrics.GetColumn("social_sentiment_negative");
  const table::Column& neu =
      **market->metrics.GetColumn("social_sentiment_neutral");
  for (size_t t = 0; t < pos.size(); t += 43) {
    const double sum = pos.value(t) + neg.value(t) + neu.value(t);
    EXPECT_GT(sum, 0.8);
    EXPECT_LT(sum, 1.2);
  }
}

TEST(MarketSimTest, FearGreedBoundedAndStartsIn2018) {
  const auto market = SimulateMarket(SmallConfig());
  const table::Column& fg = **market->metrics.GetColumn("fear_greed");
  const int start = market->latent.FindDay(Date(2018, 2, 1));
  EXPECT_TRUE(fg.is_null(static_cast<size_t>(start - 1)));
  for (size_t t = static_cast<size_t>(start); t < fg.size(); t += 17) {
    EXPECT_GE(fg.value(t), 0.0);
    EXPECT_LE(fg.value(t), 100.0);
  }
}

TEST(MarketSimTest, TradFiSeriesPositive) {
  const auto market = SimulateMarket(SmallConfig());
  for (const char* name : {"QQQ_Close", "SPY_Close", "UUP_Close",
                           "EURUSD_Close", "BSV_Close", "MBB_Close",
                           "GLD_Close", "VIX_Close"}) {
    const table::Column& c = **market->metrics.GetColumn(name);
    for (size_t t = 0; t < c.size(); t += 59) {
      EXPECT_GT(c.value(t), 0.0) << name;
    }
  }
}

TEST(MarketSimTest, EthFamilyIsOptIn) {
  MarketSimConfig config = SmallConfig();
  config.include_eth = true;
  const auto market = SimulateMarket(config);
  ASSERT_TRUE(market.ok());
  EXPECT_GT(market->catalog.CountInCategory(DataCategory::kOnChainEth), 15u);
  ASSERT_TRUE(market->metrics.HasColumn("eth_SplyCur"));
  ASSERT_TRUE(market->metrics.HasColumn("eth_DefiTvlUSD"));
  EXPECT_EQ(*market->catalog.CategoryOf("eth_GasUsedTot"),
            DataCategory::kOnChainEth);
  // ETH price and supply positive throughout.
  const table::Column& price = **market->metrics.GetColumn("eth_PriceUSD");
  const table::Column& supply = **market->metrics.GetColumn("eth_SplyCur");
  for (size_t t = 0; t < price.size(); t += 67) {
    EXPECT_GT(price.value(t), 0.0);
    EXPECT_GT(supply.value(t), 0.0);
  }
}

TEST(MarketSimTest, VixBounded) {
  const auto market = SimulateMarket(SmallConfig());
  const table::Column& vix = **market->metrics.GetColumn("VIX_Close");
  for (size_t t = 0; t < vix.size(); ++t) {
    EXPECT_GE(vix.value(t), 9.0);
    EXPECT_LE(vix.value(t), 85.0);
  }
}

}  // namespace
}  // namespace fab::sim
