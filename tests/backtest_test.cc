#include "core/backtest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/forest.h"
#include "util/random.h"

namespace fab::core {
namespace {

ml::Dataset MakeDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> c0(n), c1(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    c0[i] = rng.Normal();
    c1[i] = rng.Normal();
    y[i] = 2.0 * c0[i] + c1[i] + 0.2 * rng.Normal();
  }
  ml::Dataset d;
  d.x = *ml::ColMatrix::FromColumns({c0, c1});
  d.y = std::move(y);
  d.feature_names = {"c0", "c1"};
  return d;
}

ml::RandomForestRegressor SmallForest() {
  ml::ForestParams params;
  params.n_trees = 10;
  params.max_depth = 6;
  return ml::RandomForestRegressor(params);
}

TEST(WalkForwardTest, RejectsBadOptions) {
  const ml::Dataset d = MakeDataset(100, 1);
  const ml::RandomForestRegressor rf = SmallForest();
  WalkForwardOptions options;
  options.warmup_rows = 5;  // below the minimum
  EXPECT_FALSE(WalkForwardEvaluate(rf, d, options).ok());
  options.warmup_rows = 100;  // == rows
  EXPECT_FALSE(WalkForwardEvaluate(rf, d, options).ok());
  options.warmup_rows = 50;
  options.step = 0;
  EXPECT_FALSE(WalkForwardEvaluate(rf, d, options).ok());
}

TEST(WalkForwardTest, EvaluationPointsAreStrictlyOutOfSample) {
  const ml::Dataset d = MakeDataset(300, 3);
  WalkForwardOptions options;
  options.warmup_rows = 100;
  options.step = 10;
  options.refit_every_steps = 4;
  const auto result = WalkForwardEvaluate(SmallForest(), d, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.front(), 100u);
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_EQ(result->rows[i], result->rows[i - 1] + 10);
  }
  EXPECT_EQ(result->rows.size(), result->predictions.size());
  EXPECT_EQ(result->rows.size(), result->actuals.size());
  // 20 evaluation points, refit every 4 steps -> 5 refits.
  EXPECT_EQ(result->refits, 5);
}

TEST(WalkForwardTest, LearnsTheSignalOutOfSample) {
  const ml::Dataset d = MakeDataset(600, 5);
  WalkForwardOptions options;
  options.warmup_rows = 300;
  options.step = 3;
  const auto result = WalkForwardEvaluate(SmallForest(), d, options);
  ASSERT_TRUE(result.ok());
  // Target variance ~5.2; a fitted model must beat the mean predictor.
  EXPECT_LT(result->Mse(), 3.0);
}

TEST(WalkForwardTest, ActualsMatchDataset) {
  const ml::Dataset d = MakeDataset(200, 7);
  WalkForwardOptions options;
  options.warmup_rows = 150;
  options.step = 5;
  const auto result = WalkForwardEvaluate(SmallForest(), d, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(result->actuals[i], d.y[result->rows[i]]);
  }
}

TEST(LongFlatTest, RejectsBadInput) {
  EXPECT_FALSE(RunLongFlatBacktest({}, {}, 52).ok());
  EXPECT_FALSE(RunLongFlatBacktest({0.1}, {0.1, 0.2}, 52).ok());
  EXPECT_FALSE(RunLongFlatBacktest({0.1}, {0.1}, 0.0).ok());
}

TEST(LongFlatTest, PerfectForesightCapturesOnlyGains) {
  // Predicted = realized: the strategy takes every up week, skips every
  // down week.
  const std::vector<double> realized{0.10, -0.20, 0.05, -0.01, 0.08};
  const auto result = RunLongFlatBacktest(realized, realized, 52);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->strategy_return, std::exp(0.23) - 1.0, 1e-12);
  EXPECT_NEAR(result->hold_return, std::exp(0.02) - 1.0, 1e-12);
  EXPECT_EQ(result->periods_in_market, 3);
  EXPECT_EQ(result->periods_total, 5);
  EXPECT_DOUBLE_EQ(result->max_drawdown_log, 0.0);
  EXPECT_GT(result->annualized_sharpe, 0.0);
}

TEST(LongFlatTest, AlwaysWrongStaysFlatOrLoses) {
  // Predictions inverted: long exactly on the down weeks.
  const std::vector<double> realized{0.10, -0.20, 0.05};
  const std::vector<double> predicted{-1.0, 1.0, -1.0};
  const auto result = RunLongFlatBacktest(predicted, realized, 52);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->strategy_return, std::exp(-0.20) - 1.0, 1e-12);
  EXPECT_EQ(result->periods_in_market, 1);
  EXPECT_NEAR(result->max_drawdown_log, 0.20, 1e-12);
}

TEST(LongFlatTest, NeverInMarketIsFlat) {
  const std::vector<double> realized{0.1, 0.2};
  const std::vector<double> predicted{-1.0, -1.0};
  const auto result = RunLongFlatBacktest(predicted, realized, 52);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->strategy_return, 0.0);
  EXPECT_EQ(result->periods_in_market, 0);
  EXPECT_DOUBLE_EQ(result->annualized_sharpe, 0.0);
}

TEST(LongFlatTest, HoldReturnIndependentOfPredictions) {
  const std::vector<double> realized{0.05, -0.02, 0.03};
  const auto a = RunLongFlatBacktest({1, 1, 1}, realized, 52);
  const auto b = RunLongFlatBacktest({-1, -1, -1}, realized, 52);
  EXPECT_DOUBLE_EQ(a->hold_return, b->hold_return);
  // Always-long equals buy-and-hold.
  EXPECT_DOUBLE_EQ(a->strategy_return, a->hold_return);
}

}  // namespace
}  // namespace fab::core
