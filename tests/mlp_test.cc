#include "ml/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "explain/permutation.h"
#include "ml/metrics.h"
#include "util/random.h"

namespace fab::ml {
namespace {

Dataset MakeDataset(size_t n, uint64_t seed, bool nonlinear) {
  Rng rng(seed);
  std::vector<double> c0(n), c1(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    c0[i] = rng.Normal();
    c1[i] = rng.Normal();
    y[i] = nonlinear ? std::sin(2.0 * c0[i]) + c1[i] * c1[i]
                     : 3.0 * c0[i] - c1[i];
    y[i] += 0.05 * rng.Normal();
  }
  Dataset d;
  d.x = *ColMatrix::FromColumns({c0, c1});
  d.y = std::move(y);
  d.feature_names = {"c0", "c1"};
  return d;
}

MlpParams SmallParams() {
  MlpParams params;
  params.hidden = {32, 16};
  params.epochs = 150;
  params.batch_size = 32;
  params.learning_rate = 3e-3;
  return params;
}

TEST(MlpTest, RejectsBadInput) {
  MlpRegressor mlp;
  auto x = ColMatrix::FromColumns({{1, 2, 3}});
  EXPECT_FALSE(mlp.Fit(*x, {1.0}).ok());          // size mismatch
  EXPECT_FALSE(mlp.Fit(*x, {1, 2, 3}).ok());      // too few rows
  MlpParams params;
  params.epochs = 0;
  const Dataset d = MakeDataset(100, 1, false);
  EXPECT_FALSE(MlpRegressor(params).Fit(d.x, d.y).ok());
  params.epochs = 10;
  params.hidden = {0};
  EXPECT_FALSE(MlpRegressor(params).Fit(d.x, d.y).ok());
}

TEST(MlpTest, LearnsLinearFunction) {
  const Dataset d = MakeDataset(600, 3, false);
  MlpRegressor mlp(SmallParams());
  ASSERT_TRUE(mlp.Fit(d.x, d.y).ok());
  EXPECT_GT(R2Score(d.y, mlp.Predict(d.x)), 0.95);
}

TEST(MlpTest, LearnsNonlinearFunction) {
  const Dataset d = MakeDataset(800, 5, true);
  MlpRegressor mlp(SmallParams());
  ASSERT_TRUE(mlp.Fit(d.x, d.y).ok());
  EXPECT_GT(R2Score(d.y, mlp.Predict(d.x)), 0.85);
}

TEST(MlpTest, GeneralizesOutOfSample) {
  const Dataset train = MakeDataset(800, 7, true);
  const Dataset test = MakeDataset(300, 8, true);
  MlpRegressor mlp(SmallParams());
  ASSERT_TRUE(mlp.Fit(train.x, train.y).ok());
  EXPECT_GT(R2Score(test.y, mlp.Predict(test.x)), 0.7);
}

TEST(MlpTest, DeterministicInSeed) {
  const Dataset d = MakeDataset(200, 9, false);
  MlpParams params = SmallParams();
  params.epochs = 30;
  params.seed = 99;
  MlpRegressor a(params), b(params);
  ASSERT_TRUE(a.Fit(d.x, d.y).ok());
  ASSERT_TRUE(b.Fit(d.x, d.y).ok());
  EXPECT_EQ(a.Predict(d.x), b.Predict(d.x));
}

TEST(MlpTest, ScaleInvariantThroughStandardization) {
  // Same data at wildly different scales: training must still work.
  Dataset d = MakeDataset(400, 11, false);
  Dataset scaled = d;
  for (size_t j = 0; j < scaled.x.cols(); ++j) {
    for (double& v : scaled.x.mutable_column(j)) v *= 1e6;
  }
  for (double& v : scaled.y) v = v * 1e4 + 5e6;
  MlpRegressor mlp(SmallParams());
  ASSERT_TRUE(mlp.Fit(scaled.x, scaled.y).ok());
  EXPECT_GT(R2Score(scaled.y, mlp.Predict(scaled.x)), 0.9);
}

TEST(MlpTest, LinearModeWhenNoHiddenLayers) {
  const Dataset d = MakeDataset(400, 13, false);
  MlpParams params = SmallParams();
  params.hidden = {};
  MlpRegressor mlp(params);
  ASSERT_TRUE(mlp.Fit(d.x, d.y).ok());
  EXPECT_GT(R2Score(d.y, mlp.Predict(d.x)), 0.95);  // target IS linear
}

TEST(MlpTest, ImportancesNormalizedAndInformative) {
  Rng rng(15);
  const size_t n = 500;
  std::vector<double> signal(n), noise(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = rng.Normal();
    noise[i] = rng.Normal();
    y[i] = 5.0 * signal[i] + 0.05 * rng.Normal();
  }
  Dataset d;
  d.x = *ColMatrix::FromColumns({noise, signal});
  d.y = std::move(y);
  MlpRegressor mlp(SmallParams());
  ASSERT_TRUE(mlp.Fit(d.x, d.y).ok());
  // Saliency proxy: normalized, but weight magnitude alone is weak, so
  // the informativeness check goes through permutation importance (which
  // works with any Regressor).
  const std::vector<double> imp = mlp.FeatureImportances();
  double total = 0.0;
  for (double v : imp) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  explain::PermutationOptions options;
  options.n_repeats = 2;
  const auto pfi = explain::PermutationImportance(mlp, d, options);
  ASSERT_TRUE(pfi.ok());
  EXPECT_GT((*pfi)[1], 10.0 * std::max(1e-9, (*pfi)[0]));
}

TEST(MlpTest, SetParamAndClone) {
  MlpRegressor mlp;
  EXPECT_TRUE(mlp.SetParam("epochs", 5).ok());
  EXPECT_TRUE(mlp.SetParam("learning_rate", 0.01).ok());
  EXPECT_TRUE(mlp.SetParam("hidden_width", 16).ok());
  EXPECT_FALSE(mlp.SetParam("bogus", 0).ok());
  EXPECT_EQ(mlp.params().epochs, 5);
  EXPECT_EQ(mlp.params().hidden, (std::vector<int>{16, 8}));
  auto clone = mlp.CloneUnfitted();
  EXPECT_EQ(clone->name(), "mlp");
  auto* typed = dynamic_cast<MlpRegressor*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->params().epochs, 5);
}

TEST(MlpTest, UnfittedPredictsZeroAndEmptyImportances) {
  MlpRegressor mlp;
  ml::ColMatrix x(3, 2);
  EXPECT_DOUBLE_EQ(mlp.PredictOne(x, 0), 0.0);
  EXPECT_TRUE(mlp.FeatureImportances().empty());
  EXPECT_FALSE(mlp.fitted());
}

}  // namespace
}  // namespace fab::ml
