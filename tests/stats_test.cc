#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace fab::stats {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({-5}), -5.0);
  EXPECT_TRUE(std::isnan(Mean({})));
}

TEST(StatsTest, VarianceOfKnownValues) {
  EXPECT_DOUBLE_EQ(Variance({1, 2, 3, 4, 5}), 2.5);
  EXPECT_DOUBLE_EQ(PopulationVariance({1, 2, 3, 4, 5}), 2.0);
  EXPECT_TRUE(std::isnan(Variance({1.0})));
  EXPECT_DOUBLE_EQ(Variance({3, 3, 3}), 0.0);
}

TEST(StatsTest, StdDevIsSqrtVariance) {
  EXPECT_DOUBLE_EQ(StdDev({1, 2, 3, 4, 5}), std::sqrt(2.5));
}

TEST(StatsTest, CovarianceOfKnownValues) {
  EXPECT_DOUBLE_EQ(Covariance({1, 2, 3}, {2, 4, 6}), 2.0);
  EXPECT_DOUBLE_EQ(Covariance({1, 2, 3}, {6, 4, 2}), -2.0);
  EXPECT_TRUE(std::isnan(Covariance({1, 2}, {1})));
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3}, {5, 5, 5}), 0.0);
}

TEST(StatsTest, PearsonIsSymmetricAndBounded) {
  Rng rng(5);
  std::vector<double> x(200), y(200);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Normal();
    y[i] = 0.5 * x[i] + rng.Normal();
  }
  const double r1 = PearsonCorrelation(x, y);
  const double r2 = PearsonCorrelation(y, x);
  EXPECT_DOUBLE_EQ(r1, r2);
  EXPECT_GT(r1, 0.2);
  EXPECT_LE(std::fabs(r1), 1.0);
}

TEST(StatsTest, SpearmanDetectsMonotoneNonlinearRelation) {
  std::vector<double> x, y;
  for (int i = 1; i <= 50; ++i) {
    x.push_back(i);
    y.push_back(std::exp(0.2 * i));  // monotone but very non-linear
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 0.99);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median({5, 1, 3}), 3.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3, -1, 2}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3, -1, 2}), 3.0);
  EXPECT_TRUE(std::isnan(Min({})));
}

TEST(StatsTest, MidRanksAverageTies) {
  const std::vector<double> ranks = MidRanks({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(StatsTest, ZScoresHaveZeroMeanUnitStd) {
  const std::vector<double> z = ZScores({2, 4, 6, 8, 10});
  EXPECT_NEAR(Mean(z), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(z), 1.0, 1e-12);
}

TEST(StatsTest, ZScoresOfConstantAreZero) {
  for (double z : ZScores({7, 7, 7})) EXPECT_DOUBLE_EQ(z, 0.0);
}

TEST(StatsTest, ArgSortDescendingIsStable) {
  const std::vector<int> order = ArgSortDescending({1.0, 3.0, 3.0, 2.0});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 0}));
}

TEST(StatsTest, ArgSortAscendingIsStable) {
  const std::vector<int> order = ArgSortAscending({2.0, 1.0, 2.0});
  EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, QuantileIsMonotoneInQ) {
  Rng rng(31);
  std::vector<double> v(500);
  for (auto& x : v) x = rng.Normal();
  const double q = GetParam();
  EXPECT_LE(Quantile(v, q - 0.05), Quantile(v, q));
  EXPECT_LE(Quantile(v, q), Quantile(v, q + 0.05));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace fab::stats
