#include "ml/binning.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace fab::ml {
namespace {

TEST(BinningTest, RejectsBadMaxBins) {
  auto m = ColMatrix::FromColumns({{1, 2, 3}});
  EXPECT_FALSE(BinnedMatrix::Build(*m, 1).ok());
  EXPECT_FALSE(BinnedMatrix::Build(*m, 257).ok());
}

TEST(BinningTest, SmallDistinctSetGetsExactBins) {
  auto m = ColMatrix::FromColumns({{1, 1, 2, 2, 3, 3}});
  auto b = BinnedMatrix::Build(*m, 256);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_bins(0), 3);
  // Same value -> same code; codes respect order.
  EXPECT_EQ(b->code(0, 0), b->code(1, 0));
  EXPECT_LT(b->code(0, 0), b->code(2, 0));
  EXPECT_LT(b->code(2, 0), b->code(4, 0));
}

TEST(BinningTest, CodeMatchesEdgeSemantics) {
  // "go left" under x <= upper_edge(b) must match code <= b.
  Rng rng(7);
  std::vector<double> col(500);
  for (auto& v : col) v = rng.Normal();
  auto m = ColMatrix::FromColumns({col});
  auto b = BinnedMatrix::Build(*m, 64);
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < col.size(); ++i) {
    const int code = b->code(i, 0);
    // Value lies within its bin: above the previous edge, at or below its
    // own edge.
    EXPECT_LE(col[i], b->upper_edge(0, code));
    if (code > 0) EXPECT_GT(col[i], b->upper_edge(0, code - 1));
  }
}

TEST(BinningTest, EdgesStrictlyIncreasing) {
  Rng rng(9);
  std::vector<double> col(1000);
  for (auto& v : col) v = rng.Uniform();
  auto m = ColMatrix::FromColumns({col});
  auto b = BinnedMatrix::Build(*m, 32);
  for (int k = 1; k < b->num_bins(0); ++k) {
    EXPECT_GT(b->upper_edge(0, k), b->upper_edge(0, k - 1));
  }
}

TEST(BinningTest, LastEdgeIsColumnMax) {
  std::vector<double> col{5, 1, 9, 3};
  auto m = ColMatrix::FromColumns({col});
  auto b = BinnedMatrix::Build(*m, 8);
  EXPECT_DOUBLE_EQ(b->upper_edge(0, b->num_bins(0) - 1), 9.0);
}

TEST(BinningTest, ConstantColumnHasOneBin) {
  auto m = ColMatrix::FromColumns({{4, 4, 4, 4}});
  auto b = BinnedMatrix::Build(*m, 16);
  EXPECT_EQ(b->num_bins(0), 1);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(b->code(i, 0), 0);
}

TEST(BinningTest, BinsRoughlyBalancedOnUniformData) {
  Rng rng(11);
  std::vector<double> col(10000);
  for (auto& v : col) v = rng.Uniform();
  auto m = ColMatrix::FromColumns({col});
  const int bins = 16;
  auto b = BinnedMatrix::Build(*m, bins);
  std::vector<int> counts(static_cast<size_t>(b->num_bins(0)), 0);
  for (size_t i = 0; i < col.size(); ++i) ++counts[b->code(i, 0)];
  for (int c : counts) {
    EXPECT_GT(c, 10000 / bins / 2);
    EXPECT_LT(c, 10000 / bins * 2);
  }
}

class BinningOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(BinningOrderSweep, CodesPreserveValueOrder) {
  Rng rng(13);
  std::vector<double> col(800);
  for (auto& v : col) v = rng.StudentT(3.0);
  auto m = ColMatrix::FromColumns({col});
  auto b = BinnedMatrix::Build(*m, GetParam());
  for (size_t i = 0; i < col.size(); ++i) {
    for (size_t j = i + 1; j < col.size(); j += 97) {
      if (col[i] < col[j]) {
        EXPECT_LE(b->code(i, 0), b->code(j, 0));
      } else if (col[i] > col[j]) {
        EXPECT_GE(b->code(i, 0), b->code(j, 0));
      } else {
        EXPECT_EQ(b->code(i, 0), b->code(j, 0));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bins, BinningOrderSweep,
                         ::testing::Values(2, 8, 64, 256));

}  // namespace
}  // namespace fab::ml
