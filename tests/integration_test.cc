// End-to-end integration: simulate a market, derive indicators, build a
// scenario, run FRA + SHAP to a final feature vector, and check that the
// diverse vector beats weak single categories — the paper's pipeline in
// miniature, on deliberately small model settings.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/contribution.h"
#include "core/crypto100.h"
#include "core/dataset_builder.h"
#include "core/feature_vector.h"
#include "core/fra.h"
#include "core/improvement.h"
#include "ml/metrics.h"
#include "ml/model_selection.h"

namespace fab::core {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::MarketSimConfig config;
    config.seed = 2024;
    market_ = std::make_unique<sim::SimulatedMarket>(
        std::move(sim::SimulateMarket(config)).value());
    ASSERT_TRUE(AddTechnicalIndicators(market_.get()).ok());
    ScenarioOptions options;
    scenario_ = std::make_unique<ScenarioDataset>(std::move(
        BuildScenarioDataset(*market_, StudyPeriod::k2019, 30, options))
                                                      .value());
  }
  static void TearDownTestSuite() {
    scenario_.reset();
    market_.reset();
  }

  static std::unique_ptr<sim::SimulatedMarket> market_;
  static std::unique_ptr<ScenarioDataset> scenario_;
};

std::unique_ptr<sim::SimulatedMarket> IntegrationTest::market_;
std::unique_ptr<ScenarioDataset> IntegrationTest::scenario_;

TEST_F(IntegrationTest, ScenarioHasAllHeadlineCategories) {
  for (sim::DataCategory c : sim::AllCategories()) {
    if (c == sim::DataCategory::kOnChainEth) continue;  // opt-in extension
    EXPECT_GT(scenario_->CandidatesInCategory(c), 0u) << sim::CategoryName(c);
  }
  EXPECT_GT(scenario_->data.num_rows(), 1000u);
  EXPECT_GT(scenario_->data.num_features(), 200u);
}

TEST_F(IntegrationTest, FullSelectionPipelineRuns) {
  FraOptions fra_options;
  fra_options.target_size = 60;
  fra_options.rf.n_trees = 10;
  fra_options.rf.max_depth = 6;
  fra_options.rf.max_features = 0.3;
  fra_options.xgb.n_rounds = 15;
  fra_options.xgb.max_depth = 3;
  fra_options.pfi_repeats = 1;
  const auto fra = RunFra(scenario_->data, fra_options);
  ASSERT_TRUE(fra.ok());
  EXPECT_LE(fra->selected.size(), 60u);
  EXPECT_GE(fra->selected.size(), 10u);

  FeatureVectorOptions fv_options;
  fv_options.union_top_k = 40;
  fv_options.rf = fra_options.rf;
  fv_options.shap_row_limit = 50;
  const auto fvec = BuildFinalFeatureVector(scenario_->data, *fra, fv_options);
  ASSERT_TRUE(fvec.ok());
  EXPECT_GE(fvec->features.size(), 40u);
  EXPECT_LE(fvec->features.size(), 80u);

  // Every final feature is a real candidate (required by contributions).
  const auto contributions = ComputeContributions(*scenario_, fvec->features);
  ASSERT_TRUE(contributions.ok());

  // The diverse vector beats the weakest single categories.
  ImprovementOptions imp_options;
  imp_options.cv_folds = 3;
  imp_options.rf = fra_options.rf;
  imp_options.xgb = fra_options.xgb;
  const auto improvement = RunImprovementExperiment(
      *scenario_, fvec->features, ModelKind::kRandomForest, imp_options);
  ASSERT_TRUE(improvement.ok());
  double sentiment_pct = -1.0;
  for (const auto& c : improvement->per_category) {
    if (c.category == sim::DataCategory::kSentiment) {
      sentiment_pct = c.improvement_pct;
    }
  }
  // Sentiment alone must be far worse than the diverse vector.
  EXPECT_GT(sentiment_pct, 100.0);
}

TEST_F(IntegrationTest, ForecastBeatsNaiveBaselineOutOfSample) {
  // 5-fold CV on the diverse candidates vs predicting the current index
  // value (random-walk baseline). At w=30 the model should at least be in
  // the same league; we assert it beats the *mean* predictor clearly.
  ml::ForestParams params;
  params.n_trees = 20;
  params.max_depth = 8;
  params.max_features = 0.3;
  ml::RandomForestRegressor rf(params);
  const auto folds = *ml::KFold(scenario_->data.num_rows(), 5, true, 3);
  const auto mse = ml::CrossValMse(rf, scenario_->data, folds);
  ASSERT_TRUE(mse.ok());
  const double var = [&] {
    double mean = 0.0;
    for (double v : scenario_->data.y) mean += v;
    mean /= static_cast<double>(scenario_->data.y.size());
    double acc = 0.0;
    for (double v : scenario_->data.y) acc += (v - mean) * (v - mean);
    return acc / static_cast<double>(scenario_->data.y.size());
  }();
  EXPECT_LT(*mse, 0.2 * var);  // out-of-sample R^2 > 0.8
}

TEST_F(IntegrationTest, Crypto100TracksBtcScale) {
  const auto index = Crypto100Series(market_->top100_mcap_sum);
  ASSERT_TRUE(index.ok());
  const auto distance =
      LogScaleDistance(*index, market_->latent.btc_close);
  ASSERT_TRUE(distance.ok());
  // Within one order of magnitude of BTC on average (paper's S10 intent).
  EXPECT_LT(*distance, 1.0);
}

}  // namespace
}  // namespace fab::core
