#include "ta/volatility.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace fab::ta {
namespace {

std::vector<double> RandomWalk(size_t n, uint64_t seed, double vol) {
  Rng rng(seed);
  std::vector<double> out(n);
  double p = 100.0;
  for (auto& v : out) {
    p *= std::exp(vol * rng.Normal());
    v = p;
  }
  return out;
}

TEST(BollingerTest, BandsOrderAndMiddleIsSma) {
  const std::vector<double> series = RandomWalk(200, 3, 0.02);
  const BollingerResult b = Bollinger(series, 20);
  for (size_t i = 19; i < series.size(); ++i) {
    EXPECT_LT(b.lower.value(i), b.middle.value(i));
    EXPECT_LT(b.middle.value(i), b.upper.value(i));
  }
}

TEST(BollingerTest, FlatSeriesBandsCollapse) {
  const BollingerResult b = Bollinger(std::vector<double>(50, 10.0), 20);
  EXPECT_DOUBLE_EQ(b.upper.value(30), 10.0);
  EXPECT_DOUBLE_EQ(b.lower.value(30), 10.0);
  EXPECT_DOUBLE_EQ(b.bandwidth.value(30), 0.0);
  EXPECT_TRUE(b.percent_b.is_null(30));  // undefined when bands collapse
}

TEST(BollingerTest, BandwidthGrowsWithVolatility) {
  const BollingerResult calm = Bollinger(RandomWalk(300, 5, 0.005), 20);
  const BollingerResult wild = Bollinger(RandomWalk(300, 5, 0.05), 20);
  double calm_mean = 0.0, wild_mean = 0.0;
  int n = 0;
  for (size_t i = 19; i < 300; ++i) {
    calm_mean += calm.bandwidth.value(i);
    wild_mean += wild.bandwidth.value(i);
    ++n;
  }
  EXPECT_GT(wild_mean / n, 3.0 * calm_mean / n);
}

TEST(BollingerTest, PercentBInUnitIntervalWhenInsideBands) {
  const std::vector<double> series = RandomWalk(300, 7, 0.02);
  const BollingerResult b = Bollinger(series, 20);
  int outside = 0;
  int total = 0;
  for (size_t i = 19; i < series.size(); ++i) {
    if (b.percent_b.is_null(i)) continue;
    ++total;
    if (b.percent_b.value(i) < 0.0 || b.percent_b.value(i) > 1.0) ++outside;
  }
  // 2-sigma bands: a small minority of closes lie outside.
  EXPECT_LT(outside, total / 5);
}

TEST(AtrTest, FlatMarketHasZeroAtr) {
  const std::vector<double> flat(50, 10.0);
  const table::Column atr = Atr(flat, flat, flat, 14);
  EXPECT_DOUBLE_EQ(atr.value(30), 0.0);
}

TEST(AtrTest, PositiveAndScalesWithRange) {
  const std::vector<double> close = RandomWalk(300, 9, 0.02);
  std::vector<double> hi_narrow(close), lo_narrow(close);
  std::vector<double> hi_wide(close), lo_wide(close);
  for (size_t i = 0; i < close.size(); ++i) {
    hi_narrow[i] *= 1.005;
    lo_narrow[i] *= 0.995;
    hi_wide[i] *= 1.05;
    lo_wide[i] *= 0.95;
  }
  const table::Column narrow = Atr(hi_narrow, lo_narrow, close, 14);
  const table::Column wide = Atr(hi_wide, lo_wide, close, 14);
  EXPECT_GT(narrow.value(200), 0.0);
  EXPECT_GT(wide.value(200), narrow.value(200));
}

TEST(RealizedVolatilityTest, RecoversTrueVolatility) {
  // Daily log-vol 0.03 -> annualized ~ 0.03 * sqrt(365) ≈ 0.573.
  const std::vector<double> series = RandomWalk(2000, 11, 0.03);
  const table::Column rv = RealizedVolatility(series, 365);
  const double expected = 0.03 * std::sqrt(365.0);
  EXPECT_NEAR(rv.value(1999), expected, 0.08);
}

TEST(RealizedVolatilityTest, HigherVolGivesHigherEstimate) {
  const table::Column lo = RealizedVolatility(RandomWalk(500, 13, 0.01), 60);
  const table::Column hi = RealizedVolatility(RandomWalk(500, 13, 0.04), 60);
  EXPECT_GT(hi.value(499), lo.value(499));
}

TEST(DrawdownTest, NonPositiveAndZeroAtHighs) {
  std::vector<double> series{10, 12, 9, 11, 15, 12};
  const table::Column dd = Drawdown(series);
  EXPECT_DOUBLE_EQ(dd.value(0), 0.0);
  EXPECT_DOUBLE_EQ(dd.value(1), 0.0);
  EXPECT_NEAR(dd.value(2), 9.0 / 12.0 - 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(dd.value(4), 0.0);
  EXPECT_NEAR(dd.value(5), 12.0 / 15.0 - 1.0, 1e-12);
  for (size_t i = 0; i < series.size(); ++i) EXPECT_LE(dd.value(i), 0.0);
}

TEST(DrawdownTest, BoundedBelowByMinusOne) {
  const table::Column dd = Drawdown(RandomWalk(1000, 17, 0.05));
  for (size_t i = 0; i < dd.size(); ++i) {
    EXPECT_GE(dd.value(i), -1.0);
    EXPECT_LE(dd.value(i), 0.0);
  }
}

}  // namespace
}  // namespace fab::ta
