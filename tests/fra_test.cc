#include "core/fra.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace fab::core {
namespace {

/// Synthetic dataset: `n_signal` informative features followed by
/// `n_noise` pure-noise features.
ml::Dataset MakeDataset(size_t rows, size_t n_signal, size_t n_noise,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(n_signal + n_noise,
                                        std::vector<double>(rows));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  std::vector<double> y(rows, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < n_signal; ++j) {
      y[i] += (1.0 + static_cast<double>(j) * 0.2) * cols[j][i];
    }
    y[i] += 0.3 * rng.Normal();
  }
  ml::Dataset d;
  d.x = *ml::ColMatrix::FromColumns(std::move(cols));
  d.y = std::move(y);
  for (size_t j = 0; j < n_signal; ++j) {
    d.feature_names.push_back("signal" + std::to_string(j));
  }
  for (size_t j = 0; j < n_noise; ++j) {
    d.feature_names.push_back("noise" + std::to_string(j));
  }
  return d;
}

FraOptions FastOptions(size_t target) {
  FraOptions options;
  options.target_size = target;
  options.rf.n_trees = 15;
  options.rf.max_depth = 6;
  options.rf.max_features = 0.5;
  options.xgb.n_rounds = 25;
  options.xgb.max_depth = 3;
  options.pfi_repeats = 1;
  return options;
}

TEST(FraTest, RejectsBadOptions) {
  const ml::Dataset d = MakeDataset(200, 2, 3, 3);
  FraOptions options = FastOptions(0);
  EXPECT_FALSE(RunFra(d, options).ok());
  ml::Dataset empty;
  EXPECT_FALSE(RunFra(empty, FastOptions(10)).ok());
}

TEST(FraTest, ReachesTargetSize) {
  const ml::Dataset d = MakeDataset(400, 5, 45, 5);
  const auto result = RunFra(d, FastOptions(20));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->selected.size(), 20u);
  EXPECT_GE(result->selected.size(), 1u);
  EXPECT_FALSE(result->history.empty());
}

TEST(FraTest, KeepsSignalDropsNoise) {
  const ml::Dataset d = MakeDataset(500, 5, 45, 7);
  const auto result = RunFra(d, FastOptions(15));
  ASSERT_TRUE(result.ok());
  std::set<std::string> selected(result->selected.begin(),
                                 result->selected.end());
  int signal_kept = 0;
  for (int j = 0; j < 5; ++j) {
    signal_kept += selected.count("signal" + std::to_string(j));
  }
  EXPECT_GE(signal_kept, 4);  // nearly all true signals survive
}

TEST(FraTest, SelectionRankedByConsensusScore) {
  const ml::Dataset d = MakeDataset(400, 4, 30, 9);
  const auto result = RunFra(d, FastOptions(12));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->selected.size(), result->selected_scores.size());
  for (size_t i = 1; i < result->selected_scores.size(); ++i) {
    EXPECT_GE(result->selected_scores[i - 1], result->selected_scores[i]);
  }
  // The strongest signal feature should rank near the top.
  bool top5_has_signal = false;
  for (size_t i = 0; i < std::min<size_t>(5, result->selected.size()); ++i) {
    if (result->selected[i].rfind("signal", 0) == 0) top5_has_signal = true;
  }
  EXPECT_TRUE(top5_has_signal);
}

TEST(FraTest, NoReductionNeededReturnsAll) {
  const ml::Dataset d = MakeDataset(200, 3, 2, 11);
  const auto result = RunFra(d, FastOptions(50));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected.size(), 5u);
  EXPECT_TRUE(result->history.empty());
}

TEST(FraTest, HistoryTracksThresholdSchedule) {
  const ml::Dataset d = MakeDataset(400, 3, 57, 13);
  FraOptions options = FastOptions(20);
  options.corr_threshold_start = 0.5;
  options.corr_threshold_step = 0.025;
  const auto result = RunFra(d, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->history.size(); ++i) {
    EXPECT_NEAR(result->history[i].corr_threshold,
                0.5 + 0.025 * static_cast<double>(i), 1e-12);
    EXPECT_EQ(result->history[i].iteration, static_cast<int>(i));
  }
  // Feature counts weakly decrease.
  for (size_t i = 1; i < result->history.size(); ++i) {
    EXPECT_LE(result->history[i].features_before,
              result->history[i - 1].features_before);
  }
}

TEST(FraTest, TerminatesUnderIterationCapWhenStalled) {
  // All features strongly correlated with the target: the corr guard
  // protects everything until the threshold passes their correlation, so
  // the run exercises the tightening schedule and still terminates.
  Rng rng(15);
  const size_t rows = 300;
  std::vector<double> base(rows);
  for (auto& v : base) v = rng.Normal();
  std::vector<std::vector<double>> cols;
  for (int j = 0; j < 30; ++j) {
    std::vector<double> c(rows);
    for (size_t i = 0; i < rows; ++i) c[i] = base[i] + 0.05 * rng.Normal();
    cols.push_back(std::move(c));
  }
  ml::Dataset d;
  d.x = *ml::ColMatrix::FromColumns(std::move(cols));
  d.y = base;
  for (int j = 0; j < 30; ++j) d.feature_names.push_back("c" + std::to_string(j));

  FraOptions options = FastOptions(10);
  options.max_iterations = 30;
  const auto result = RunFra(d, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->history.size(), 30u);
  EXPECT_GE(result->selected.size(), 1u);
}

TEST(FraTest, DeterministicInSeed) {
  const ml::Dataset d = MakeDataset(300, 4, 26, 17);
  FraOptions options = FastOptions(12);
  options.seed = 777;
  const auto a = RunFra(d, options);
  const auto b = RunFra(d, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->selected, b->selected);
}

}  // namespace
}  // namespace fab::core
