// Ablation over the Feature Reduction Algorithm's design choices
// (DESIGN.md Section 5): the all-method consensus removal rule vs an
// any-method rule, the correlation-threshold schedule, and the effect of
// the SHAP union on the final vector.

#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "core/report.h"
#include "explain/ranking.h"
#include "util/string_util.h"

namespace {

struct VariantSummary {
  std::string name;
  size_t survivors = 0;
  int iterations = 0;
  size_t categories_represented = 0;
};

VariantSummary Summarize(const std::string& name,
                         const fab::core::ScenarioDataset& scenario,
                         const fab::core::FraResult& result) {
  VariantSummary s;
  s.name = name;
  s.survivors = result.selected.size();
  s.iterations = static_cast<int>(result.history.size());
  std::set<int> cats;
  for (const auto& feature : result.selected) {
    for (size_t j = 0; j < scenario.data.feature_names.size(); ++j) {
      if (scenario.data.feature_names[j] == feature) {
        cats.insert(static_cast<int>(scenario.categories[j]));
        break;
      }
    }
  }
  s.categories_represented = cats.size();
  return s;
}

}  // namespace

int main() {
  using namespace fab;
  core::Experiments ex =
      bench::MakeExperiments("Ablation: FRA design choices (scenario 2019_30)");
  const core::ScenarioDataset* scenario = bench::DieIfError(
      ex.Scenario(core::StudyPeriod::k2019, 30), "scenario");

  core::FraOptions base = ex.config().fra;
  std::vector<VariantSummary> summaries;

  // Baseline: the paper's rule.
  {
    const core::FraResult r =
        bench::DieIfError(core::RunFra(scenario->data, base), "fra");
    summaries.push_back(Summarize("paper (all-method + corr guard)",
                                  *scenario, r));
  }
  // Looser bottom fraction: removes more aggressively per iteration.
  {
    core::FraOptions opts = base;
    opts.bottom_fraction = 0.75;
    const core::FraResult r =
        bench::DieIfError(core::RunFra(scenario->data, opts), "fra");
    summaries.push_back(Summarize("bottom 75% rule", *scenario, r));
  }
  // No correlation guard (threshold starts beyond 1: always satisfied).
  {
    core::FraOptions opts = base;
    opts.corr_threshold_start = 1.1;
    const core::FraResult r =
        bench::DieIfError(core::RunFra(scenario->data, opts), "fra");
    summaries.push_back(Summarize("no corr guard", *scenario, r));
  }
  // Flat (non-tightening) schedule.
  {
    core::FraOptions opts = base;
    opts.corr_threshold_step = 0.0;
    opts.max_iterations = 12;
    const core::FraResult r =
        bench::DieIfError(core::RunFra(scenario->data, opts), "fra");
    summaries.push_back(Summarize("flat corr schedule (capped)", *scenario, r));
  }

  core::AsciiTable table(
      {"variant", "survivors", "iterations", "categories represented"});
  for (const auto& s : summaries) {
    table.AddRow({s.name, std::to_string(s.survivors),
                  std::to_string(s.iterations),
                  std::to_string(s.categories_represented)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: the tightening corr schedule is the termination mechanism — "
      "a flat schedule can stall (hits the iteration cap above 100 "
      "features); dropping the corr guard or widening the bottom fraction "
      "converges faster but removes high-correlation features the paper's "
      "rule deliberately protects.\n");
  return 0;
}
