// Ablation: sweeps the Crypto100 scaling-factor power over a finer grid
// than Figure 2 and quantifies the paper's tuning argument — power 7
// minimizes the log-scale distance to BTC's price.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/crypto100.h"
#include "core/report.h"
#include "util/string_util.h"

int main() {
  using namespace fab;
  core::Experiments ex =
      bench::MakeExperiments("Ablation: Crypto100 scaling-factor power sweep");
  const sim::SimulatedMarket* market =
      bench::DieIfError(ex.Market(), "market");

  const size_t first =
      static_cast<size_t>(market->latent.FindDay(Date(2017, 1, 1)));
  std::vector<double> sums, btc;
  for (size_t t = first; t < market->latent.num_days(); ++t) {
    sums.push_back(market->top100_mcap_sum[t]);
    btc.push_back(market->latent.btc_close[t]);
  }

  core::AsciiTable table({"power", "log10 distance to BTC", "index mean"});
  double best_power = 0.0;
  double best_dist = 1e18;
  for (double power = 4.0; power <= 9.01; power += 0.5) {
    const std::vector<double> index =
        bench::DieIfError(core::Crypto100Series(sums, power), "series");
    const double dist =
        bench::DieIfError(core::LogScaleDistance(index, btc), "distance");
    double mean = 0.0;
    for (double v : index) mean += v;
    mean /= static_cast<double>(index.size());
    table.AddRow({FormatDouble(power, 1), FormatDouble(dist, 4),
                  FormatDouble(mean, 0)});
    if (dist < best_dist) {
      best_dist = dist;
      best_power = power;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Best power on this grid: %.1f (paper tuned to 7; claim S10 "
              "holds when the optimum lands in [6.5, 7.5]).\n",
              best_power);
  return 0;
}
