// google-benchmark microbenchmarks over the library's substrates: table
// ops, technical indicators, simulator throughput, tree/forest/GBDT
// training, prediction, PFI and TreeSHAP.

#include <benchmark/benchmark.h>

#include <cmath>

#include "explain/permutation.h"
#include "explain/shap.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "sim/market_sim.h"
#include "ta/ta.h"
#include "table/ops.h"
#include "util/random.h"

namespace {

using namespace fab;

ml::Dataset MakeDataset(size_t n, size_t f, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = 2.0 * cols[0][i] + cols[1][i] * cols[2 % f][i] + 0.3 * rng.Normal();
  }
  ml::Dataset d;
  d.x = *ml::ColMatrix::FromColumns(std::move(cols));
  d.y = std::move(y);
  for (size_t j = 0; j < f; ++j) d.feature_names.push_back("f" + std::to_string(j));
  return d;
}

void BM_TableInterpolate(benchmark::State& state) {
  table::Column col(10000);
  Rng rng(3);
  for (size_t i = 0; i < col.size(); ++i) {
    if (rng.Uniform() > 0.2) col.Set(i, rng.Normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table::InterpolateLinear(col));
  }
}
BENCHMARK(BM_TableInterpolate);

void BM_TaEma(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> close(10000);
  double p = 100.0;
  for (auto& v : close) {
    p *= std::exp(0.01 * rng.Normal());
    v = p;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ta::Ema(close, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_TaEma)->Arg(20)->Arg(200);

void BM_TaRsi(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> close(10000);
  double p = 100.0;
  for (auto& v : close) {
    p *= std::exp(0.01 * rng.Normal());
    v = p;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ta::Rsi(close, 14));
  }
}
BENCHMARK(BM_TaRsi);

void BM_SimulateMarket(benchmark::State& state) {
  for (auto _ : state) {
    sim::MarketSimConfig config;
    config.latent.end = Date(2018, 12, 31);  // 2.5 simulated years
    config.seed = 11;
    auto market = sim::SimulateMarket(config);
    benchmark::DoNotOptimize(market.ok());
  }
}
BENCHMARK(BM_SimulateMarket)->Unit(benchmark::kMillisecond);

void BM_ForestFit(benchmark::State& state) {
  const ml::Dataset d =
      MakeDataset(static_cast<size_t>(state.range(0)), 60, 17);
  ml::ForestParams params;
  params.n_trees = 30;
  params.max_depth = 8;
  params.max_features = 0.33;
  for (auto _ : state) {
    ml::RandomForestRegressor rf(params);
    benchmark::DoNotOptimize(rf.Fit(d.x, d.y).ok());
  }
}
BENCHMARK(BM_ForestFit)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_GbdtFit(benchmark::State& state) {
  const ml::Dataset d =
      MakeDataset(static_cast<size_t>(state.range(0)), 60, 19);
  ml::GbdtParams params;
  params.n_rounds = 50;
  params.max_depth = 4;
  for (auto _ : state) {
    ml::GbdtRegressor xgb(params);
    benchmark::DoNotOptimize(xgb.Fit(d.x, d.y).ok());
  }
}
BENCHMARK(BM_GbdtFit)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  const ml::Dataset d = MakeDataset(2000, 60, 23);
  ml::RandomForestRegressor rf(
      ml::ForestParams{.n_trees = 30, .max_depth = 8, .max_features = 0.33});
  (void)rf.Fit(d.x, d.y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rf.Predict(d.x));
  }
}
BENCHMARK(BM_ForestPredict)->Unit(benchmark::kMillisecond);

void BM_PermutationImportance(benchmark::State& state) {
  const ml::Dataset d = MakeDataset(500, 40, 29);
  ml::RandomForestRegressor rf(
      ml::ForestParams{.n_trees = 20, .max_depth = 6, .max_features = 0.5});
  (void)rf.Fit(d.x, d.y);
  explain::PermutationOptions options;
  options.n_repeats = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(explain::PermutationImportance(rf, d, options));
  }
}
BENCHMARK(BM_PermutationImportance)->Unit(benchmark::kMillisecond);

void BM_TreeShap(benchmark::State& state) {
  const ml::Dataset d = MakeDataset(1000, 40, 31);
  ml::RandomForestRegressor rf(
      ml::ForestParams{.n_trees = 20, .max_depth = 6, .max_features = 0.5});
  (void)rf.Fit(d.x, d.y);
  const ml::ColMatrix sample = d.x.TakeRows({0, 1, 2, 3, 4, 5, 6, 7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(explain::MeanAbsShapForest(rf, sample));
  }
}
BENCHMARK(BM_TreeShap)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
