// Extension experiment (the paper's "Impact on complex models" future-work
// item): does data-source diversity still help when the forecaster is a
// neural network instead of a tree ensemble? Compares cross-validated MSE
// of diverse vs single-category feature sets for RF, XGBoost-style GBDT,
// and an MLP on scenario 2019_30.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/report.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "ml/mlp.h"
#include "ml/model_selection.h"
#include "util/string_util.h"

namespace {

using namespace fab;

double CvMse(const ml::Regressor& model, const ml::Dataset& data,
             uint64_t seed) {
  const auto folds = ml::KFold(data.num_rows(), 5, /*shuffle=*/true, seed);
  return *ml::CrossValMse(model, data, *folds);
}

}  // namespace

int main() {
  core::Experiments ex = bench::MakeExperiments(
      "Ablation: does diversity help complex models too? (scenario 2019_30)");
  const core::ScenarioDataset* scenario = bench::DieIfError(
      ex.Scenario(core::StudyPeriod::k2019, 30), "scenario");
  const core::FinalFeatureVector fvec = bench::DieIfError(
      ex.FinalVector(core::StudyPeriod::k2019, 30), "final vector");
  const auto diverse_positions = bench::DieIfError(
      scenario->data.FeaturePositions(fvec.features), "positions");
  const ml::Dataset diverse = bench::DieIfError(
      scenario->data.SelectFeatures(diverse_positions), "select");

  const bool fast = ex.config().fast;
  ml::RandomForestRegressor rf(ex.config().improvement.rf);
  ml::GbdtRegressor xgb(ex.config().improvement.xgb);
  ml::MlpParams mlp_params;
  mlp_params.hidden = {64, 32};
  mlp_params.epochs = fast ? 40 : 120;
  mlp_params.learning_rate = 2e-3;
  ml::MlpRegressor mlp(mlp_params);
  const std::vector<const ml::Regressor*> models = {&rf, &xgb, &mlp};

  core::AsciiTable table({"model", "diverse MSE", "technical-only", "improv.",
                          "onchain-BTC-only", "improv."});
  for (const ml::Regressor* model : models) {
    const double diverse_mse = CvMse(*model, diverse, 321);
    std::vector<std::string> row{model->name(),
                                 FormatDouble(diverse_mse, 0)};
    for (sim::DataCategory category : {sim::DataCategory::kTechnical,
                                       sim::DataCategory::kOnChainBtc}) {
      const auto positions = scenario->FeaturePositionsInCategory(category);
      const ml::Dataset single =
          bench::DieIfError(scenario->data.SelectFeatures(positions), "sel");
      const double single_mse = CvMse(*model, single, 321);
      row.push_back(FormatDouble(single_mse, 0));
      row.push_back(
          FormatDouble(100.0 * (single_mse - diverse_mse) / diverse_mse, 1) +
          "%");
    }
    table.AddRow(row);
    std::printf("%s model done\n", model->name().c_str());
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf(
      "Reading: if the improvement columns stay positive for the MLP, "
      "diversity transfers to complex models (the paper left this open).\n");
  return 0;
}
