// Reproduces Table 4: the top-20 features unique to the short-term group
// (windows 1, 7) and to the long-term group (windows 90, 180), per set.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/report.h"

int main() {
  using namespace fab;
  core::Experiments ex = bench::MakeExperiments(
      "Table 4: top-20 unique features, short-term vs long-term");

  for (core::StudyPeriod period :
       {core::StudyPeriod::k2017, core::StudyPeriod::k2019}) {
    const core::HorizonGroup short_term =
        bench::DieIfError(ex.Group(period, {1, 7}), "short group");
    const core::HorizonGroup long_term =
        bench::DieIfError(ex.Group(period, {90, 180}), "long group");
    const auto unique_short = core::GroupUniqueTopK(short_term, long_term, 20);
    const auto unique_long = core::GroupUniqueTopK(long_term, short_term, 20);

    core::AsciiTable table({"Rank", "Short-term unique", "Long-term unique"});
    const size_t rows = std::max(unique_short.size(), unique_long.size());
    for (size_t i = 0; i < rows; ++i) {
      table.AddRow({std::to_string(i + 1),
                    i < unique_short.size() ? unique_short[i] : "-",
                    i < unique_long.size() ? unique_long[i] : "-"});
    }
    std::printf("Set %s\n%s\n", core::PeriodName(period),
                table.Render().c_str());
  }
  std::printf(
      "Paper's shape: short-term uniques are dominated by recent "
      "SMAs/EMAs (5-30 day windows) and address-activity counts; long-term "
      "uniques include trad-fi closes (QQQ, UUP, EURUSD, bonds), supply "
      "activity (SplyActPct1yr, SER, VelCur1yr, s2f_ratio) and USDC supply "
      "dynamics in the 2019 set.\n");
  return 0;
}
