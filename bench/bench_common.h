#ifndef FAB_BENCH_BENCH_COMMON_H_
#define FAB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>

#include "core/experiments.h"
#include "util/status.h"

namespace fab::bench {

/// Prints a banner and returns the env-configured experiment runner.
inline core::Experiments MakeExperiments(const char* title) {
  core::ExperimentConfig config = core::ExperimentConfig::FromEnv();
  std::printf("=== %s ===\n", title);
  std::printf("(seed=%llu mode=%s cache=%s)\n\n",
              static_cast<unsigned long long>(config.seed),
              config.fast ? "fast" : "full", config.cache_dir.c_str());
  return core::Experiments(config);
}

/// Aborts the binary with a readable message on error.
inline void DieIf(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T DieIfError(Result<T> result, const char* what) {
  DieIf(result.status(), what);
  return std::move(result).value();
}

}  // namespace fab::bench

#endif  // FAB_BENCH_BENCH_COMMON_H_
