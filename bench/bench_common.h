#ifndef FAB_BENCH_BENCH_COMMON_H_
#define FAB_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiments.h"
#include "util/obs/clock.h"
#include "util/obs/metrics.h"
#include "util/status.h"

namespace fab::bench {

/// Prints a banner and returns the env-configured experiment runner.
inline core::Experiments MakeExperiments(const char* title) {
  core::ExperimentConfig config = core::ExperimentConfig::FromEnv();
  std::printf("=== %s ===\n", title);
  std::printf("(seed=%llu mode=%s cache=%s)\n\n",
              static_cast<unsigned long long>(config.seed),
              config.fast ? "fast" : "full", config.cache_dir.c_str());
  return core::Experiments(config);
}

/// Aborts the binary with a readable message on error.
inline void DieIf(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T DieIfError(Result<T> result, const char* what) {
  DieIf(result.status(), what);
  return std::move(result).value();
}

namespace internal {

inline std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

/// Best-effort current commit: FAB_GIT_SHA env override first (CI sets
/// it), then `git rev-parse HEAD`, else "unknown".
inline std::string GitSha() {
  const char* env = std::getenv("FAB_GIT_SHA");
  if (env != nullptr && *env != '\0') return env;
  std::string sha;
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) sha = buf;
    ::pclose(pipe);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

}  // namespace internal

/// Machine-readable twin of a benchmark's stdout: accumulates scalar
/// results (and pre-rendered JSON blobs like BatchServer::StatszJson())
/// and writes BENCH_<name>.json on Write() — name, wall ms, iters, the
/// process-wide obs metric snapshot, and the git SHA — so the bench
/// trajectory is diffable across commits.
///
///   fab::bench::BenchReporter reporter("parallel_scaling");
///   reporter.AddScalar("speedup_w8", speedup);
///   reporter.set_iters(n);
///   fab::bench::DieIf(reporter.Write(), "bench report");
///
/// Wall time defaults to construction → Write(); override with
/// set_wall_ms for a tighter measured section. Output lands in
/// FAB_BENCH_DIR (default: current directory).
class BenchReporter {
 public:
  explicit BenchReporter(std::string name)
      : name_(std::move(name)), constructed_(obs::Clock::Now()) {}

  void set_wall_ms(double ms) { wall_ms_ = ms; }
  void set_iters(uint64_t n) { iters_ = n; }

  void AddScalar(const std::string& key, double value) {
    entries_.emplace_back(key, internal::JsonNumber(value));
  }

  /// Attaches an already-rendered JSON value (object/array) verbatim.
  void AddJson(const std::string& key, const std::string& raw_json) {
    entries_.emplace_back(key, raw_json);
  }

  Status Write() const {
    const double wall_ms =
        wall_ms_ >= 0.0
            ? wall_ms_
            : obs::Clock::MicrosBetween(constructed_, obs::Clock::Now()) /
                  1000.0;
    std::string out = "{";
    out += "\"name\":" + internal::JsonString(name_);
    out += ",\"git_sha\":" + internal::JsonString(internal::GitSha());
    out += ",\"wall_ms\":" + internal::JsonNumber(wall_ms);
    out += ",\"iters\":" + std::to_string(iters_);
    out += ",\"results\":{";
    bool first = true;
    for (const auto& [key, value] : entries_) {
      if (!first) out += ",";
      first = false;
      out += internal::JsonString(key) + ":" + value;
    }
    out += "},\"metrics\":" + obs::ExportMetrics();
    out += "}\n";

    const char* dir = std::getenv("FAB_BENCH_DIR");
    const std::string path = (dir != nullptr && *dir != '\0')
                                 ? std::string(dir) + "/BENCH_" + name_ + ".json"
                                 : "BENCH_" + name_ + ".json";
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) return Status::IoError("cannot write bench report: " + path);
    file << out;
    if (!file.good()) return Status::IoError("bench report write failed: " + path);
    std::printf("\nwrote %s\n", path.c_str());
    return Status::OK();
  }

 private:
  const std::string name_;
  const obs::Clock::time_point constructed_;
  double wall_ms_ = -1.0;
  uint64_t iters_ = 0;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace fab::bench

#endif  // FAB_BENCH_BENCH_COMMON_H_
