// Observability overhead microbenchmark: what does a FAB_TRACE_SCOPE
// cost with collection off, with only the flight recorder on (the
// always-on production configuration), and with full tracing on — and
// how much serving throughput does each tier give back?
//
//   ./obs_overhead [spans] [serve_rows]
//
// Reports ns/span for the three tiers and a BatchServer submit→complete
// rows/s under each, plus the flight/off and trace/off throughput
// ratios perf_gate holds floors on (an obs regression that halves
// serving throughput fails CI before it ships).

#include <cstdio>
#include <cstdlib>
#include <future>
#include <vector>

#include "bench/bench_common.h"
#include "ml/forest.h"
#include "serve/batch_server.h"
#include "serve/servable.h"
#include "util/obs/clock.h"
#include "util/obs/flight.h"
#include "util/obs/trace.h"
#include "util/obs/trace_context.h"
#include "util/random.h"

namespace {

volatile double g_sink = 0.0;

/// ns per span for the current tracer/flight configuration. The span
/// body is empty, so this is pure instrumentation cost.
double SpanNanos(size_t iters) {
  const auto start = fab::obs::Clock::Now();
  for (size_t i = 0; i < iters; ++i) {
    FAB_TRACE_SCOPE("bench/span");
  }
  const auto end = fab::obs::Clock::Now();
  return fab::obs::Clock::MicrosBetween(start, end) * 1000.0 /
         static_cast<double>(iters);
}

fab::ml::ColMatrix MakeMatrix(size_t n, size_t f, uint64_t seed) {
  fab::Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  return *fab::ml::ColMatrix::FromColumns(std::move(cols));
}

/// Submit→complete rows/s through a BatchServer under the current obs
/// configuration — the serving path every span/sample rides in prod.
double ServeRowsPerSec(fab::serve::BatchServer& server,
                       const fab::ml::ColMatrix& queries) {
  const auto start = fab::obs::Clock::Now();
  std::vector<std::future<fab::Result<double>>> pending;
  pending.reserve(queries.rows());
  for (size_t i = 0; i < queries.rows(); ++i) {
    const fab::obs::ScopedTraceId scope(fab::obs::MintTraceId());
    std::vector<double> row(queries.cols());
    for (size_t j = 0; j < queries.cols(); ++j) row[j] = queries.at(i, j);
    auto submitted = server.Submit(std::move(row));
    if (submitted.ok()) pending.push_back(std::move(*submitted));
  }
  double sum = 0.0;
  for (auto& f : pending) {
    auto result = f.get();
    if (result.ok()) sum += *result;
  }
  g_sink = sum;
  const auto end = fab::obs::Clock::Now();
  const double seconds = fab::obs::Clock::MicrosBetween(start, end) / 1e6;
  return static_cast<double>(queries.rows()) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t kSpans =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;
  const size_t kRows = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8000;

  std::printf("=== obs_overhead: %zu spans, %zu serve rows ===\n\n", kSpans,
              kRows);
  fab::bench::BenchReporter reporter("obs_overhead");
  reporter.set_iters(kSpans);

  // --- Span cost per tier. --------------------------------------------------
  fab::obs::StopTracing();
  fab::obs::FlightSetEnabled(false);
  const double ns_off = SpanNanos(kSpans);

  fab::obs::FlightSetEnabled(true);
  const double ns_flight = SpanNanos(kSpans);

  fab::obs::StartTracing();
  const double ns_trace = SpanNanos(kSpans);
  fab::obs::StopTracing();
  fab::obs::FlightSetEnabled(false);

  std::printf("span cost:   off %7.1f ns   flight %7.1f ns   trace %7.1f ns\n",
              ns_off, ns_flight, ns_trace);
  reporter.AddScalar("span_ns_off", ns_off);
  reporter.AddScalar("span_ns_flight", ns_flight);
  reporter.AddScalar("span_ns_trace", ns_trace);

  // --- Serving throughput per tier. -----------------------------------------
  const size_t kFeatures = 20;
  const fab::ml::ColMatrix train = MakeMatrix(2000, kFeatures, 1);
  fab::Rng rng(2);
  std::vector<double> y(train.rows());
  for (size_t i = 0; i < train.rows(); ++i) {
    y[i] = train.at(i, 0) * train.at(i, 1) + 0.5 * train.at(i, 2) +
           0.1 * rng.Normal();
  }
  fab::ml::ForestParams params;
  params.n_trees = 50;
  params.max_depth = 8;
  fab::ml::RandomForestRegressor rf(params);
  fab::bench::DieIf(rf.Fit(train, y), "forest fit");
  auto servable = fab::bench::DieIfError(
      fab::serve::Servable::Wrap(
          std::make_unique<fab::ml::RandomForestRegressor>(rf)),
      "wrap");
  const fab::ml::ColMatrix queries = MakeMatrix(kRows, kFeatures, 3);

  fab::serve::BatchServerOptions options;
  options.num_threads = 2;
  options.max_batch = 128;
  options.coalesce_wait_us = 100;
  fab::serve::BatchServer server(servable, options);

  // Warm up the batch threads and code paths before the measured runs.
  (void)ServeRowsPerSec(server, queries);

  const double serve_off = ServeRowsPerSec(server, queries);

  fab::obs::FlightSetEnabled(true);
  const double serve_flight = ServeRowsPerSec(server, queries);

  fab::obs::StartTracing();
  const double serve_trace = ServeRowsPerSec(server, queries);
  fab::obs::StopTracing();
  fab::obs::FlightSetEnabled(false);

  const double ratio_flight = serve_off > 0.0 ? serve_flight / serve_off : 0.0;
  const double ratio_trace = serve_off > 0.0 ? serve_trace / serve_off : 0.0;
  std::printf(
      "serve rows/s: off %9.0f   flight %9.0f (%.2fx)   trace %9.0f "
      "(%.2fx)\n",
      serve_off, serve_flight, ratio_flight, serve_trace, ratio_trace);
  reporter.AddScalar("serve_rows_per_s_off", serve_off);
  reporter.AddScalar("serve_rows_per_s_flight", serve_flight);
  reporter.AddScalar("serve_rows_per_s_trace", serve_trace);
  reporter.AddScalar("serve_ratio_flight", ratio_flight);
  reporter.AddScalar("serve_ratio_trace", ratio_trace);

  server.Shutdown();
  fab::bench::DieIf(reporter.Write(), "bench report");
  return 0;
}
