// Reproduces Figure 3: per-category contribution factors to the final
// feature vector across all prediction windows, set 2017.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/report.h"
#include "util/string_util.h"

int main() {
  using namespace fab;
  core::Experiments ex = bench::MakeExperiments(
      "Figure 3: contribution of data sources, set 2017");

  std::vector<std::string> window_labels;
  std::vector<std::string> category_names;
  std::vector<std::vector<double>> values;  // [category][window]



  std::vector<std::string> header{"window"};
  std::vector<sim::DataCategory> shown;
  for (sim::DataCategory c : sim::AllCategories()) {
    if (c == sim::DataCategory::kOnChainUsdc ||
        c == sim::DataCategory::kOnChainEth) {
      continue;  // absent from the 2017 set / headline setup
    }
    shown.push_back(c);
    header.push_back(sim::CategoryKey(c));
  }
  core::AsciiTable table(header);
  for (int window : core::PredictionWindows()) {
    window_labels.push_back("w=" + std::to_string(window));
    const auto contributions = bench::DieIfError(
        ex.Contributions(core::StudyPeriod::k2017, window), "contributions");
    if (category_names.empty()) {
      for (sim::DataCategory c : shown) {
        category_names.push_back(sim::CategoryName(c));
        values.emplace_back();
      }
    }
    std::vector<std::string> row{std::to_string(window)};
    size_t series = 0;
    for (sim::DataCategory c : shown) {
      double factor = 0.0;
      for (const auto& contrib : contributions) {
        if (contrib.category == c) factor = contrib.contribution_factor;
      }
      values[series++].push_back(factor);
      row.push_back(FormatDouble(factor, 3));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("%s\n",
              core::AsciiGroupedBars("Contribution factor by window",
                                     window_labels, category_names, values)
                  .c_str());
  std::printf(
      "Paper claims: S1 on-chain contributes at every horizon; S2 technical "
      "decays with horizon; S3 trad-fi rises with horizon; S4 macro is weak "
      "short-term and strong long-term; S6 sentiment skews short-term.\n");
  return 0;
}
