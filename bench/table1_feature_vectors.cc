// Reproduces Table 1: the size of the final feature vector for every
// scenario (period × prediction window), plus the FRA-vs-SHAP overlap the
// paper reports (~78 of the top 100 on average).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/report.h"
#include "util/string_util.h"

int main() {
  using namespace fab;
  core::Experiments ex = bench::MakeExperiments(
      "Table 1: final feature vectors per scenario");

  core::AsciiTable table({"Scenario", "Number of Features",
                          "FRA survivors", "FRA ∩ SHAP top-100"});
  double overlap_sum = 0.0;
  int scenarios = 0;
  for (core::StudyPeriod period :
       {core::StudyPeriod::k2017, core::StudyPeriod::k2019}) {
    for (int window : core::PredictionWindows()) {
      const core::FinalFeatureVector fvec =
          bench::DieIfError(ex.FinalVector(period, window), "final vector");
      table.AddRow({std::string(core::PeriodName(period)) + "_" +
                        std::to_string(window),
                    std::to_string(fvec.features.size()),
                    std::to_string(fvec.fra_ranked.size()),
                    std::to_string(fvec.overlap_fra_shap_top100)});
      overlap_sum += static_cast<double>(fvec.overlap_fra_shap_top100);
      ++scenarios;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Average FRA ∩ SHAP top-100 overlap: %.1f features "
              "(paper: ~78).\n",
              overlap_sum / scenarios);
  std::printf("Paper claim S9: FRA converges to <= 100 features per "
              "scenario; paper's vectors had 79-100.\n");
  return 0;
}
