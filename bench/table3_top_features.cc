// Reproduces Table 3: the top-5 most important features for the
// short-term (windows 1, 7) and long-term (windows 90, 180) groups in
// both sets, ranked by fine-tuned-RF importance (duplicates averaged).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/report.h"

int main() {
  using namespace fab;
  core::Experiments ex = bench::MakeExperiments(
      "Table 3: top-5 features, short-term vs long-term groups");

  core::AsciiTable table({"Set", "Rank", "Short-term", "Long-term"});
  for (core::StudyPeriod period :
       {core::StudyPeriod::k2017, core::StudyPeriod::k2019}) {
    const core::HorizonGroup short_term =
        bench::DieIfError(ex.Group(period, {1, 7}), "short group");
    const core::HorizonGroup long_term =
        bench::DieIfError(ex.Group(period, {90, 180}), "long group");
    const auto top_short = core::GroupTopK(short_term, 5);
    const auto top_long = core::GroupTopK(long_term, 5);
    for (size_t i = 0; i < 5; ++i) {
      table.AddRow({i == 0 ? core::PeriodName(period) : "",
                    std::to_string(i + 1),
                    i < top_short.size() ? top_short[i] : "-",
                    i < top_long.size() ? top_long[i] : "-"});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper's shape: short-term tops are trend metrics (EMAs, realized "
      "cap, recent activity); long-term tops are supply/balance dynamics "
      "(SplyAdrBal*, SplyCur, SplyActEver).\n");
  return 0;
}
