// Reproduces Table 6: average MSE percentage decrease of the RF model by
// data category (averaged over windows) for both sets, plus the overall
// XGBoost cross-check reported in Section 4.3.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "core/report.h"
#include "util/string_util.h"

int main() {
  using namespace fab;
  core::Experiments ex = bench::MakeExperiments(
      "Table 6: average MSE decrease of the RF model by data category");

  // category -> period -> (sum, count)
  std::map<int, std::map<int, std::pair<double, int>>> acc;
  std::map<int, std::pair<double, int>> overall_rf, overall_xgb;

  for (core::StudyPeriod period :
       {core::StudyPeriod::k2017, core::StudyPeriod::k2019}) {
    const int p = static_cast<int>(period);
    for (int window : core::PredictionWindows()) {
      const core::ImprovementResult rf = bench::DieIfError(
          ex.Improvement(period, window, core::ModelKind::kRandomForest),
          "rf improvement");
      for (const auto& ci : rf.per_category) {
        auto& slot = acc[static_cast<int>(ci.category)][p];
        slot.first += ci.improvement_pct;
        slot.second += 1;
        overall_rf[p].first += ci.improvement_pct;
        overall_rf[p].second += 1;
      }
      const core::ImprovementResult xgb = bench::DieIfError(
          ex.Improvement(period, window, core::ModelKind::kGbdt),
          "xgb improvement");
      for (const auto& ci : xgb.per_category) {
        overall_xgb[p].first += ci.improvement_pct;
        overall_xgb[p].second += 1;
      }
    }
  }

  core::AsciiTable table({"Data Category", "2017 Improvement (%)",
                          "2019 Improvement (%)"});
  for (sim::DataCategory c : sim::AllCategories()) {
    std::vector<std::string> row{sim::CategoryName(c)};
    for (int p : {0, 1}) {
      auto it = acc.find(static_cast<int>(c));
      if (it == acc.end() || it->second.count(p) == 0) {
        row.push_back("-");
      } else {
        const auto& [sum, count] = it->second[p];
        row.push_back(FormatDouble(sum / count, 2) + "%");
      }
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());

  for (int p : {0, 1}) {
    std::printf(
        "Overall average improvement, set %s: RF %.2f%% (paper: %s), "
        "XGB %.2f%% (paper: %s)\n",
        p == 0 ? "2017" : "2019", overall_rf[p].first / overall_rf[p].second,
        p == 0 ? "455.67%" : "426.67%",
        overall_xgb[p].first / overall_xgb[p].second,
        p == 0 ? "399.67%" : "468%");
  }
  std::printf(
      "\nPaper claim S8: underrepresented categories (sentiment, macro) "
      "benefit most from diversity; BTC on-chain metrics benefit least "
      "(they already span technical and fundamental information).\n");
  return 0;
}
