// Parallel scaling benchmark: wall-clock speedup of the pipeline's two
// hottest embarrassingly-parallel stages — permutation importance (PFI)
// and per-row SHAP attribution — at shared-pool widths 1, 2, 4 and 8.
//
//   ./parallel_scaling [rows] [features] [trees]
//
// Also cross-checks the determinism contract: every width must produce
// bitwise-identical importance vectors, so speedup never costs
// reproducibility. On a machine with >= 8 cores the combined PFI+SHAP
// stage is expected to clear ~2.5x at 8 threads vs 1; on smaller hosts
// the bench still validates invariance and reports whatever the
// hardware yields.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "explain/permutation.h"
#include "explain/shap.h"
#include "ml/forest.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

fab::ml::Dataset MakeDataset(size_t rows, size_t features, uint64_t seed) {
  fab::Rng rng(seed);
  std::vector<std::vector<double>> cols(features, std::vector<double>(rows));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  std::vector<double> y(rows, 0.0);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < features && j < 4; ++j) y[i] += cols[j][i];
    y[i] += 0.25 * rng.Normal();
  }
  fab::ml::Dataset d;
  d.x = *fab::ml::ColMatrix::FromColumns(std::move(cols));
  d.y = std::move(y);
  for (size_t j = 0; j < features; ++j) {
    d.feature_names.push_back("f" + std::to_string(j));
  }
  return d;
}

bool BitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t kRows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const size_t kFeatures = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 24;
  const int kTrees = argc > 3 ? std::atoi(argv[3]) : 60;
  const int kWidths[] = {1, 2, 4, 8};

  std::printf(
      "=== parallel_scaling: %zu rows, %zu features, %d trees "
      "(hardware_concurrency=%u) ===\n\n",
      kRows, kFeatures, kTrees, std::thread::hardware_concurrency());

  fab::ml::Dataset data = MakeDataset(kRows, kFeatures, 42);
  fab::ml::ForestParams params;
  params.n_trees = kTrees;
  params.max_depth = 6;
  params.max_features = 0.5;
  params.seed = 7;
  fab::ml::RandomForestRegressor rf(params);
  if (!rf.Fit(data.x, data.y).ok()) {
    std::fprintf(stderr, "forest fit failed\n");
    return 1;
  }

  fab::explain::PermutationOptions pfi_options;
  pfi_options.n_repeats = 3;
  pfi_options.seed = 99;

  std::printf("%8s  %10s  %10s  %10s  %10s  %s\n", "threads", "pfi_s",
              "shap_s", "total_s", "speedup", "bitwise");

  fab::bench::BenchReporter reporter("parallel_scaling");
  reporter.set_iters(sizeof(kWidths) / sizeof(kWidths[0]));
  reporter.AddScalar("rows", static_cast<double>(kRows));
  reporter.AddScalar("features", static_cast<double>(kFeatures));
  reporter.AddScalar("trees", kTrees);

  std::vector<double> baseline_pfi, baseline_shap;
  double baseline_total = 0.0;
  bool all_identical = true;
  for (int width : kWidths) {
    fab::util::SetSharedPoolThreads(width);

    auto start = Clock::now();
    const auto pfi = fab::explain::PermutationImportance(rf, data, pfi_options);
    const double pfi_s = SecondsSince(start);

    start = Clock::now();
    const auto shap = fab::explain::MeanAbsShapForest(rf, data.x);
    const double shap_s = SecondsSince(start);

    if (!pfi.ok() || !shap.ok()) {
      std::fprintf(stderr, "importance computation failed at width %d\n",
                   width);
      return 1;
    }

    const double total = pfi_s + shap_s;
    bool identical = true;
    if (width == kWidths[0]) {
      baseline_pfi = *pfi;
      baseline_shap = *shap;
      baseline_total = total;
    } else {
      identical = BitwiseEqual(*pfi, baseline_pfi) &&
                  BitwiseEqual(*shap, baseline_shap);
      all_identical = all_identical && identical;
    }
    std::printf("%8d  %10.3f  %10.3f  %10.3f  %9.2fx  %s\n", width, pfi_s,
                shap_s, total, baseline_total / total,
                identical ? "yes" : "NO");
    const std::string tag = "_w" + std::to_string(width);
    reporter.AddScalar("pfi_s" + tag, pfi_s);
    reporter.AddScalar("shap_s" + tag, shap_s);
    reporter.AddScalar("speedup" + tag, baseline_total / total);
  }
  fab::util::SetSharedPoolThreads(0);
  reporter.AddScalar("bitwise_identical", all_identical ? 1.0 : 0.0);
  fab::bench::DieIf(reporter.Write(), "bench report");

  if (!all_identical) {
    std::fprintf(stderr,
                 "\nFAIL: importance vectors drifted across thread counts\n");
    return 1;
  }
  std::printf("\nall widths bitwise-identical to the 1-thread baseline\n");
  return 0;
}
