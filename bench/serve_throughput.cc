// Serving-path microbenchmark: single-row virtual dispatch vs the
// flattened SoA kernel, plus the end-to-end BatchServer path.
//
//   ./serve_throughput [rows] [trees]
//
// Reports rows/sec for each prediction path and p50/p99 single-request
// latency, and checks the flat batched path clears the 2x acceptance bar
// over per-row virtual PredictOne.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "ml/forest.h"
#include "ml/gbdt.h"
#include "serve/batch_server.h"
#include "serve/flat_forest.h"
#include "serve/servable.h"
#include "util/random.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

fab::ml::ColMatrix MakeMatrix(size_t n, size_t f, uint64_t seed) {
  fab::Rng rng(seed);
  std::vector<std::vector<double>> cols(f, std::vector<double>(n));
  for (auto& c : cols) {
    for (auto& v : c) v = rng.Normal();
  }
  return *fab::ml::ColMatrix::FromColumns(std::move(cols));
}

/// Defeats dead-code elimination.
volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  const size_t kRows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const int kTrees = argc > 2 ? std::atoi(argv[2]) : 100;
  const size_t kFeatures = 20;

  std::printf("=== serve_throughput: %zu rows, %d trees, %zu features ===\n\n",
              kRows, kTrees, kFeatures);
  fab::bench::BenchReporter reporter("serve_throughput");

  // Train once on a modest sample; inference is what we measure.
  const fab::ml::ColMatrix train = MakeMatrix(2000, kFeatures, 1);
  fab::Rng rng(2);
  std::vector<double> y(train.rows());
  for (size_t i = 0; i < train.rows(); ++i) {
    y[i] = train.at(i, 0) * train.at(i, 1) + 0.5 * train.at(i, 2) +
           0.1 * rng.Normal();
  }
  fab::ml::ForestParams params;
  params.n_trees = kTrees;
  params.max_depth = 10;
  fab::ml::RandomForestRegressor rf(params);
  if (!rf.Fit(train, y).ok()) {
    std::fprintf(stderr, "FATAL: forest fit failed\n");
    return 1;
  }
  const fab::ml::ColMatrix queries = MakeMatrix(kRows, kFeatures, 3);
  auto flat_result = fab::serve::FlatForest::FromRegressor(rf);
  if (!flat_result.ok()) {
    std::fprintf(stderr, "FATAL: flatten failed\n");
    return 1;
  }
  const fab::serve::FlatForest& flat = *flat_result;
  std::printf("flat kernel: %zu trees, %zu nodes (16 B/node vs 40 B/node)\n\n",
              flat.num_trees(), flat.num_nodes());

  // --- Batch paths: rows/sec. ----------------------------------------------
  const fab::ml::Regressor& virt = rf;  // force virtual dispatch
  auto t0 = Clock::now();
  double acc = 0.0;
  for (size_t r = 0; r < kRows; ++r) acc += virt.PredictOne(queries, r);
  const double sec_virtual_per_row = SecondsSince(t0);
  g_sink = acc;

  t0 = Clock::now();
  const std::vector<double> batch_virtual = virt.Predict(queries);
  const double sec_virtual_batch = SecondsSince(t0);
  g_sink = batch_virtual.back();

  t0 = Clock::now();
  const std::vector<double> batch_flat = flat.Predict(queries);
  const double sec_flat_batch = SecondsSince(t0);
  g_sink = batch_flat.back();

  for (size_t r = 0; r < kRows; ++r) {
    if (batch_flat[r] != batch_virtual[r]) {
      std::fprintf(stderr, "FATAL: flat/virtual mismatch at row %zu\n", r);
      return 1;
    }
  }

  const double rows = static_cast<double>(kRows);
  std::printf("%-34s %12.0f rows/s\n", "virtual per-row PredictOne:",
              rows / sec_virtual_per_row);
  std::printf("%-34s %12.0f rows/s  (%.2fx vs per-row)\n",
              "virtual batch Predict (trees outer):",
              rows / sec_virtual_batch, sec_virtual_per_row / sec_virtual_batch);
  std::printf("%-34s %12.0f rows/s  (%.2fx vs per-row)\n",
              "flat batch Predict:", rows / sec_flat_batch,
              sec_virtual_per_row / sec_flat_batch);

  // --- Single-row latency: p50 / p99. --------------------------------------
  const size_t kLatencyProbes = std::min<size_t>(kRows, 4000);
  std::vector<double> lat_virtual, lat_flat;
  lat_virtual.reserve(kLatencyProbes);
  lat_flat.reserve(kLatencyProbes);
  for (size_t r = 0; r < kLatencyProbes; ++r) {
    auto s = Clock::now();
    g_sink = virt.PredictOne(queries, r);
    lat_virtual.push_back(SecondsSince(s) * 1e6);
    s = Clock::now();
    g_sink = flat.PredictOne(queries, r);
    lat_flat.push_back(SecondsSince(s) * 1e6);
  }
  std::printf("\nsingle-row latency (us):        p50      p99\n");
  std::printf("  virtual PredictOne        %7.2f  %7.2f\n",
              Percentile(lat_virtual, 0.50), Percentile(lat_virtual, 0.99));
  std::printf("  flat PredictOne           %7.2f  %7.2f\n",
              Percentile(lat_flat, 0.50), Percentile(lat_flat, 0.99));

  // --- End-to-end BatchServer path. ----------------------------------------
  auto servable =
      fab::serve::Servable::Wrap(std::make_unique<fab::ml::RandomForestRegressor>(rf));
  if (!servable.ok()) {
    std::fprintf(stderr, "FATAL: wrap failed\n");
    return 1;
  }
  fab::serve::BatchServerOptions options;
  options.num_threads = 2;
  options.max_batch = 128;
  options.coalesce_wait_us = 100;
  fab::serve::BatchServer server(*servable, options);

  const size_t kServerRequests = std::min<size_t>(kRows, 20000);
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<double> features(kFeatures);
      for (size_t r = static_cast<size_t>(c); r < kServerRequests;
           r += kClients) {
        for (size_t j = 0; j < kFeatures; ++j) features[j] = queries.at(r, j);
        auto result = server.Forecast(features);
        if (result.ok()) g_sink = *result;
      }
    });
  }
  for (auto& client : clients) client.join();
  const fab::serve::BatchServerStats stats = server.Stats();
  std::printf("\nBatchServer (%d clients, %d workers, max_batch=%zu):\n",
              kClients, options.num_threads, options.max_batch);
  std::printf("  %llu requests in %llu batches (mean batch %.1f)\n",
              static_cast<unsigned long long>(stats.requests_completed),
              static_cast<unsigned long long>(stats.batches_run),
              stats.mean_batch_size);
  std::printf("  %12.0f rows/s   p50 %.0f us   p99 %.0f us\n",
              stats.rows_per_sec, stats.p50_latency_us, stats.p99_latency_us);

  const double speedup = sec_virtual_per_row / sec_flat_batch;
  std::printf("\nflat-batched vs per-row virtual speedup: %.2fx  [%s]\n",
              speedup, speedup >= 2.0 ? "PASS >= 2x" : "FAIL < 2x");

  reporter.set_iters(kRows);
  reporter.AddScalar("trees", kTrees);
  reporter.AddScalar("rows_per_s_virtual_per_row", rows / sec_virtual_per_row);
  reporter.AddScalar("rows_per_s_virtual_batch", rows / sec_virtual_batch);
  reporter.AddScalar("rows_per_s_flat_batch", rows / sec_flat_batch);
  reporter.AddScalar("flat_vs_per_row_speedup", speedup);
  reporter.AddScalar("server_rows_per_s", stats.rows_per_sec);
  reporter.AddJson("server_statsz", server.StatszJson());
  fab::bench::DieIf(reporter.Write(), "bench report");

  return speedup >= 2.0 ? 0 : 1;
}
