// Reproduces Figure 2 (a/b): the Crypto100 index computed with scaling
// powers 6, 7 and 8 compared against BTC's price. Power 7 keeps the index
// on BTC's price scale; 6 under-compresses, 8 over-compresses.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/crypto100.h"
#include "core/report.h"
#include "util/string_util.h"

int main() {
  using namespace fab;
  core::Experiments ex = bench::MakeExperiments(
      "Figure 2: Crypto100 scaling-factor powers vs BTC price");
  const sim::SimulatedMarket* market =
      bench::DieIfError(ex.Market(), "market");

  const size_t first =
      static_cast<size_t>(market->latent.FindDay(Date(2017, 1, 1)));
  const size_t n = market->latent.num_days();
  std::vector<std::string> labels;
  std::vector<double> sums, btc;
  for (size_t t = first; t < n; ++t) {
    labels.push_back(market->latent.dates[t].ToString());
    sums.push_back(market->top100_mcap_sum[t]);
    btc.push_back(market->latent.btc_close[t]);
  }

  core::AsciiTable table({"power", "index min", "index max", "index mean",
                          "log10 distance to BTC"});
  for (double power : {6.0, 7.0, 8.0}) {
    const std::vector<double> index =
        bench::DieIfError(core::Crypto100Series(sums, power), "index");
    double lo = index[0], hi = index[0], mean = 0.0;
    for (double v : index) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      mean += v;
    }
    mean /= static_cast<double>(index.size());
    const double dist =
        bench::DieIfError(core::LogScaleDistance(index, btc), "distance");
    table.AddRow({FormatDouble(power, 0), FormatDouble(lo, 0),
                  FormatDouble(hi, 0), FormatDouble(mean, 0),
                  FormatDouble(dist, 3)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Figure 2a: power 7 and 8 vs BTC.
  const std::vector<double> idx7 =
      bench::DieIfError(core::Crypto100Series(sums, 7.0), "idx7");
  const std::vector<double> idx8 =
      bench::DieIfError(core::Crypto100Series(sums, 8.0), "idx8");
  const std::vector<double> idx6 =
      bench::DieIfError(core::Crypto100Series(sums, 6.0), "idx6");
  std::printf("%s\n",
              core::AsciiSeries("(2a) Crypto100, power 7", labels, idx7).c_str());
  std::printf("%s\n",
              core::AsciiSeries("(2a) Crypto100, power 8", labels, idx8).c_str());
  std::printf("%s\n",
              core::AsciiSeries("(2b) Crypto100, power 6", labels, idx6).c_str());
  std::printf("%s\n", core::AsciiSeries("BTC price", labels, btc).c_str());

  std::printf("Paper claim S10: power 7 minimizes the log-scale distance to "
              "BTC among {6, 7, 8}; power 6 blows the scale up by orders of "
              "magnitude.\n");
  return 0;
}
