// Reproduces Figure 1: cumulative market capitalization of the top 100
// cryptocurrencies vs the whole market, showing the top 100 carry the
// large majority — the justification for the Crypto100 index.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/report.h"
#include "util/string_util.h"

int main() {
  using namespace fab;
  core::Experiments ex = bench::MakeExperiments(
      "Figure 1: Top 100 cryptocurrencies vs total market cap");
  const sim::SimulatedMarket* market =
      bench::DieIfError(ex.Market(), "market");

  const Date start(2017, 1, 1);
  const size_t first =
      static_cast<size_t>(market->latent.FindDay(start));
  const size_t n = market->latent.num_days();

  std::vector<std::string> labels;
  std::vector<double> top100, total, share;
  for (size_t t = first; t < n; ++t) {
    labels.push_back(market->latent.dates[t].ToString());
    top100.push_back(market->top100_mcap_sum[t] / 1e9);
    total.push_back(market->total_mcap_sum[t] / 1e9);
    share.push_back(100.0 * market->top100_mcap_sum[t] /
                    market->total_mcap_sum[t]);
  }

  std::printf("%s\n", core::AsciiSeries("Top-100 market cap ($B)", labels,
                                        top100)
                          .c_str());
  std::printf("%s\n",
              core::AsciiSeries("Total market cap ($B)", labels, total).c_str());
  std::printf("%s\n", core::AsciiSeries("Top-100 share of total (%)", labels,
                                        share)
                          .c_str());

  // Yearly summary rows.
  core::AsciiTable table({"year", "top100 ($B)", "total ($B)", "share (%)"});
  int current_year = 0;
  double sum_top = 0.0, sum_total = 0.0;
  int days = 0;
  auto flush = [&]() {
    if (days == 0) return;
    table.AddRow({std::to_string(current_year),
                  FormatDouble(sum_top / days / 1e9, 1),
                  FormatDouble(sum_total / days / 1e9, 1),
                  FormatDouble(100.0 * sum_top / sum_total, 1)});
  };
  for (size_t t = first; t < n; ++t) {
    const int year = market->latent.dates[t].year();
    if (year != current_year) {
      flush();
      current_year = year;
      sum_top = sum_total = 0.0;
      days = 0;
    }
    sum_top += market->top100_mcap_sum[t];
    sum_total += market->total_mcap_sum[t];
    ++days;
  }
  flush();
  std::printf("%s", table.Render().c_str());

  double min_share = 100.0;
  for (double s : share) min_share = std::min(min_share, s);
  std::printf("\nMinimum top-100 share over the period: %.1f%% — the top 100 "
              "dominate the market throughout (paper claim S11).\n",
              min_share);
  return 0;
}
