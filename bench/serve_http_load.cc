// Open-loop HTTP load generator for the fab::net serving front-end.
//
//   ./serve_http_load [step_seconds=1.0] [overload_seconds=2.0] [threads=16]
//
// Stands up the full serving stack in-process (registry -> ShardedRouter
// -> ForecastService -> HttpServer on an ephemeral loopback port), then
// drives POST /predict over real sockets with an open-loop arrival
// schedule: ticket i is due at t0 + i/qps and is sent as soon as a
// client thread reaches it, late or not — offered load does not slow
// down because the server queues (that feedback is exactly what a
// closed-loop generator gets wrong).
//
// Phase 1 sweeps offered QPS and records the client-side p50/p99 latency
// curve plus goodput and shed counts per step. Phase 2 re-offers 2x the
// best observed goodput and asserts the admission-control contract:
//   - the server sheds (429s with Retry-After) instead of collapsing,
//   - it keeps serving (some 200s),
//   - the admitted queue-wait p99 (from /statusz) stays within the
//     configured SLO times a documented slack factor.
// Exits non-zero if any acceptance check fails; writes
// BENCH_serve_http.json via BenchReporter either way.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "ml/forest.h"
#include "net/forecast_service.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/json.h"
#include "net/shard_router.h"
#include "serve/registry.h"
#include "util/random.h"

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kFeatures = 12;
constexpr size_t kRowsPerRequest = 16;
constexpr double kSloQueueWaitUs = 20000.0;  // 20ms admission SLO
/// Realized p99 may overshoot the predictive SLO check by the in-flight
/// batch it could not preempt; 3x is the documented acceptance slack.
constexpr double kSloSlack = 3.0;

// Two-shard layout: every "rf" key hashes to shard 0, every "xgb" key
// to shard 1, so alternating requests exercise both queues.
const fab::serve::ModelKey kKeyShard0{"2017", 7, "rf"};
const fab::serve::ModelKey kKeyShard1{"2019", 21, "xgb"};

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

std::unique_ptr<fab::ml::Regressor> TrainForest(uint64_t seed) {
  fab::Rng rng(seed);
  const size_t n = 256;
  std::vector<std::vector<double>> cols(kFeatures, std::vector<double>(n));
  for (auto& col : cols) {
    for (auto& v : col) v = rng.Normal();
  }
  fab::ml::ColMatrix x = *fab::ml::ColMatrix::FromColumns(std::move(cols));
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = x.at(i, 0) + 2.0 * x.at(i, 1) + 0.1 * rng.Normal();
  }
  fab::ml::ForestParams params;
  params.n_trees = 120;
  params.seed = seed;
  auto forest = std::make_unique<fab::ml::RandomForestRegressor>(params);
  fab::bench::DieIf(forest->Fit(x, y), "train forest");
  return forest;
}

std::string PredictBody(const fab::serve::ModelKey& key, uint64_t seed) {
  fab::Rng rng(seed);
  std::string body = "{\"period\":\"" + key.period +
                     "\",\"window\":" + std::to_string(key.window) +
                     ",\"model\":\"" + key.model + "\",\"rows\":[";
  for (size_t r = 0; r < kRowsPerRequest; ++r) {
    if (r != 0) body += ",";
    body += "[";
    for (size_t f = 0; f < kFeatures; ++f) {
      if (f != 0) body += ",";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6f", rng.Normal());
      body += buf;
    }
    body += "]";
  }
  body += "]}";
  return body;
}

struct StepResult {
  double offered_qps = 0.0;
  long ok = 0;
  long shed = 0;
  long failed = 0;          // transport errors or non-200/429 statuses
  long missing_retry = 0;   // 429s without a usable Retry-After header
  double elapsed_s = 0.0;
  double p50_ms = 0.0;      // of successful (200) requests
  double p99_ms = 0.0;
  double goodput_qps = 0.0;
};

/// Offers `qps` for `seconds` across `threads` open-loop workers.
StepResult RunStep(uint16_t port, double qps, double seconds, int threads,
                   const std::vector<std::string>& bodies) {
  struct ThreadBin {
    std::vector<double> ok_ms;
    long ok = 0;
    long shed = 0;
    long failed = 0;
    long missing_retry = 0;
  };
  const long total = static_cast<long>(qps * seconds);
  std::atomic<long> ticket{0};
  std::vector<ThreadBin> bins(static_cast<size_t>(threads));
  const Clock::time_point t0 = Clock::now();

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadBin& bin = bins[static_cast<size_t>(t)];
      fab::net::HttpClient client("127.0.0.1", port);
      while (true) {
        const long i = ticket.fetch_add(1);
        if (i >= total) break;
        const auto due =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(static_cast<double>(i) /
                                                   qps));
        std::this_thread::sleep_until(due);  // already-due: sends at once
        const Clock::time_point start = Clock::now();
        fab::Result<fab::net::HttpResponse> response = client.Post(
            "/predict", bodies[static_cast<size_t>(i) % bodies.size()]);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - start)
                .count();
        if (!response.ok()) {
          ++bin.failed;
          continue;
        }
        if (response->status_code == 200) {
          ++bin.ok;
          bin.ok_ms.push_back(ms);
        } else if (response->status_code == 429) {
          ++bin.shed;
          const std::string* retry = response->Header("Retry-After");
          if (retry == nullptr || std::atoi(retry->c_str()) < 1) {
            ++bin.missing_retry;
          }
        } else {
          ++bin.failed;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  StepResult result;
  result.offered_qps = qps;
  result.elapsed_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  std::vector<double> ok_ms;
  for (const ThreadBin& bin : bins) {
    result.ok += bin.ok;
    result.shed += bin.shed;
    result.failed += bin.failed;
    result.missing_retry += bin.missing_retry;
    ok_ms.insert(ok_ms.end(), bin.ok_ms.begin(), bin.ok_ms.end());
  }
  result.p50_ms = Percentile(ok_ms, 0.50);
  result.p99_ms = Percentile(ok_ms, 0.99);
  result.goodput_qps =
      result.elapsed_s > 0.0 ? static_cast<double>(result.ok) /
                                   result.elapsed_s
                             : 0.0;
  return result;
}

/// Max per-shard admitted queue-wait p99, read back through /statusz —
/// the same telemetry an operator would alert on.
double StatuszQueueWaitP99Us(uint16_t port) {
  fab::net::HttpClient client("127.0.0.1", port);
  fab::Result<fab::net::HttpResponse> response = client.Get("/statusz");
  if (!response.ok() || response->status_code != 200) return -1.0;
  fab::Result<fab::net::JsonValue> doc =
      fab::net::ParseJson(response->body);
  if (!doc.ok()) return -1.0;
  const fab::net::JsonValue* router = doc->Find("router");
  const fab::net::JsonValue* shards =
      router != nullptr ? router->Find("shards") : nullptr;
  if (shards == nullptr || !shards->is_array()) return -1.0;
  double worst = 0.0;
  for (const fab::net::JsonValue& shard : shards->array()) {
    const fab::net::JsonValue* server = shard.Find("server");
    const fab::net::JsonValue* hist =
        server != nullptr ? server->Find("queue_wait_us") : nullptr;
    const fab::net::JsonValue* p99 =
        hist != nullptr ? hist->Find("p99") : nullptr;
    if (p99 != nullptr && p99->is_number()) {
      worst = std::max(worst, p99->number());
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const double kStepSeconds = argc > 1 ? std::atof(argv[1]) : 1.0;
  const double kOverloadSeconds = argc > 2 ? std::atof(argv[2]) : 2.0;
  const int kThreads = argc > 3 ? std::atoi(argv[3]) : 16;

  std::printf(
      "=== serve_http_load: %.1fs/step sweep, %.1fs overload, %d client "
      "threads ===\n\n",
      kStepSeconds, kOverloadSeconds, kThreads);

  namespace fs = std::filesystem;
  const std::string root =
      (fs::temp_directory_path() / "fab_serve_http_load").string();
  fs::remove_all(root);
  fs::create_directories(root);

  fab::serve::ModelRegistry registry(root);
  fab::bench::DieIf(registry.Put(kKeyShard0, TrainForest(17)), "put rf");
  fab::bench::DieIf(registry.Put(kKeyShard1, TrainForest(23)), "put xgb");

  fab::net::ShardedRouterOptions router_options;
  router_options.num_shards = 2;
  router_options.threads_per_shard = 1;
  router_options.max_batch = 32;
  router_options.max_shard_queue = 64;
  router_options.slo_queue_wait_us = kSloQueueWaitUs;
  std::unique_ptr<fab::net::ShardedRouter> router = fab::bench::DieIfError(
      fab::net::ShardedRouter::Create(&registry, router_options), "router");
  fab::net::ForecastService service(router.get());

  fab::net::HttpServerOptions server_options;
  server_options.port = 0;
  server_options.num_workers = 4;
  fab::net::HttpServer server(server_options);
  service.RegisterRoutes(&server);
  fab::bench::DieIf(server.Start(), "server start");
  const uint16_t port = server.port();
  std::printf("serving on 127.0.0.1:%u\n\n", port);

  const std::vector<std::string> bodies = {PredictBody(kKeyShard0, 101),
                                           PredictBody(kKeyShard1, 102)};

  fab::bench::BenchReporter reporter("serve_http");
  reporter.AddScalar("slo_queue_wait_us", kSloQueueWaitUs);
  reporter.AddScalar("rows_per_request", kRowsPerRequest);

  // --- Phase 1: offered-QPS sweep -> p50/p99-vs-QPS curve. ---
  // Doubling schedule from 200 qps until the knee shows (sheds appear or
  // goodput falls >15% short of offered), capped at 9 steps so a machine
  // the workload cannot saturate still terminates. The first two steps
  // (200, 400) always run, giving the perf gate stable keys.
  std::printf("%10s %10s %10s %10s %10s %8s\n", "offered", "goodput",
              "p50 ms", "p99 ms", "shed429", "failed");
  std::string curve = "[";
  double saturation_goodput = 0.0;
  uint64_t total_requests = 0;
  double next_qps = 200.0;
  for (size_t s = 0; s < 9; ++s, next_qps *= 2.0) {
    const StepResult step =
        RunStep(port, next_qps, kStepSeconds, kThreads, bodies);
    std::printf("%10.0f %10.1f %10.2f %10.2f %10ld %8ld\n",
                step.offered_qps, step.goodput_qps, step.p50_ms, step.p99_ms,
                step.shed, step.failed);
    const std::string tag =
        "qps" + std::to_string(static_cast<long>(step.offered_qps));
    reporter.AddScalar(tag + "_goodput", step.goodput_qps);
    reporter.AddScalar(tag + "_p50_ms", step.p50_ms);
    reporter.AddScalar(tag + "_p99_ms", step.p99_ms);
    reporter.AddScalar(tag + "_shed429", static_cast<double>(step.shed));
    if (s != 0) curve += ",";
    char point[256];
    std::snprintf(point, sizeof(point),
                  "{\"offered_qps\":%.0f,\"goodput_qps\":%.2f,"
                  "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"shed429\":%ld,"
                  "\"failed\":%ld}",
                  step.offered_qps, step.goodput_qps, step.p50_ms,
                  step.p99_ms, step.shed, step.failed);
    curve += point;
    saturation_goodput = std::max(saturation_goodput, step.goodput_qps);
    total_requests +=
        static_cast<uint64_t>(step.ok + step.shed + step.failed);
    const bool knee = step.shed > 0 ||
                      step.goodput_qps < 0.85 * step.offered_qps;
    if (s >= 1 && knee) break;
  }
  curve += "]";
  reporter.AddJson("qps_curve", curve);
  reporter.AddScalar("saturation_goodput_qps", saturation_goodput);

  // --- Phase 2: 2x saturation -> shed, keep serving, hold the SLO. ---
  const double overload_qps = 2.0 * saturation_goodput;
  std::printf("\noverload: offering %.0f qps (2x best goodput)\n",
              overload_qps);
  const StepResult overload =
      RunStep(port, overload_qps, kOverloadSeconds, kThreads, bodies);
  const double p99_queue_wait_us = StatuszQueueWaitP99Us(port);
  total_requests +=
      static_cast<uint64_t>(overload.ok + overload.shed + overload.failed);
  std::printf(
      "overload: %ld ok, %ld shed(429), %ld failed, admitted p99 %.2fms, "
      "queue-wait p99 %.0fus (slo %.0fus x %.1f slack)\n",
      overload.ok, overload.shed, overload.failed, overload.p99_ms,
      p99_queue_wait_us, kSloQueueWaitUs, kSloSlack);

  reporter.AddScalar("overload_offered_qps", overload_qps);
  reporter.AddScalar("overload_goodput_qps", overload.goodput_qps);
  reporter.AddScalar("overload_ok", static_cast<double>(overload.ok));
  reporter.AddScalar("overload_shed429",
                     static_cast<double>(overload.shed));
  reporter.AddScalar("overload_p99_ms", overload.p99_ms);
  reporter.AddScalar("admitted_p99_queue_wait_us", p99_queue_wait_us);
  reporter.AddJson("router_statsz", router->StatszJson());
  reporter.set_iters(total_requests);
  fab::bench::DieIf(reporter.Write(), "bench report");

  // --- Acceptance. ---
  bool pass = true;
  auto fail = [&pass](const char* what) {
    std::fprintf(stderr, "ACCEPTANCE FAIL: %s\n", what);
    pass = false;
  };
  if (overload.ok < 1) fail("overload phase served no 200s");
  if (overload.shed < 1) {
    fail("overload phase shed no 429s (admission control never engaged)");
  }
  if (overload.missing_retry > 0) {
    fail("at least one 429 lacked a Retry-After >= 1");
  }
  if (overload.failed > 0) fail("transport errors / unexpected statuses");
  if (p99_queue_wait_us < 0.0) fail("/statusz unreadable");
  if (p99_queue_wait_us > kSloQueueWaitUs * kSloSlack) {
    fail("admitted queue-wait p99 blew through the SLO slack budget");
  }

  server.Shutdown();
  router->Shutdown();
  fs::remove_all(root);
  std::printf("\n%s\n", pass ? "ACCEPTANCE PASS" : "ACCEPTANCE FAIL");
  return pass ? 0 : 1;
}
