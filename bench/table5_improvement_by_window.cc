// Reproduces Table 5: average MSE percentage decrease of the RF model
// (diverse feature vector vs single-category vectors) by prediction
// window, for both sets.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/report.h"
#include "util/string_util.h"

int main() {
  using namespace fab;
  core::Experiments ex = bench::MakeExperiments(
      "Table 5: average MSE decrease of the RF model by prediction window");

  core::AsciiTable table(
      {"Prediction Window", "2017 Improvement (%)", "2019 Improvement (%)"});
  for (int window : core::PredictionWindows()) {
    std::vector<std::string> row{std::to_string(window)};
    for (core::StudyPeriod period :
         {core::StudyPeriod::k2017, core::StudyPeriod::k2019}) {
      const core::ImprovementResult result = bench::DieIfError(
          ex.Improvement(period, window, core::ModelKind::kRandomForest),
          "improvement");
      row.push_back(FormatDouble(result.MeanImprovementPct(), 2) + "%");
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper claim S7: the diverse vector's advantage is largest at w=1, "
      "dips at w=7, then grows again toward w=180 (paper: 856%% / 189%% / "
      "219%% / 378%% / 636%% for 2017).\n");
  return 0;
}
